"""``repro serve``: the simulation-as-a-service daemon.

One asyncio process keeps the expensive state warm across requests —
the in-process trace cache (``repro.workloads.trace_cache``), the
worker thread pool and the metrics registry — so a client pays trace
materialization once, not per invocation. Clients speak the
newline-delimited JSON envelope protocol of :mod:`repro.api.protocol`
over a TCP socket; many clients, many concurrent requests per client.

Structure (all simulation semantics live in :mod:`repro.api.facade` —
this module is scheduling and sockets only):

* every connection gets a **writer task** draining a per-connection
  queue, so interleaved jobs can never corrupt each other's lines;
* ``sim``/``grid`` requests are validated immediately, then admitted
  into a **per-client queue** (bounded by ``max_queued_per_client``;
  past that the client gets the typed ``overloaded`` error);
* a scheduler task **round-robins across clients** whenever one of the
  ``max_inflight`` execution slots frees, so a client queueing fifty
  grids cannot starve the client queueing one;
* grid requests are **content-addressed** (:func:`~repro.server.state.
  grid_key`): identical in-flight grids are joined rather than re-run,
  every grid journals its request and attaches a keyed checkpoint with
  ``resume=True``, and on startup journaled-but-unfinished grids are
  re-queued — a killed daemon resumes mid-grid work instead of
  recomputing it (``docs/service.md`` walks through the recovery flow).

Grids execute one at a time (the harness failure collector and
checkpoint attachment are process-global); sims from different
requests run concurrently on the pool.
"""

from __future__ import annotations

import asyncio
import os
import sys
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from itertools import count

from repro.api import facade
from repro.api.errors import (
    ERR_BAD_REQUEST,
    ERR_BAD_SCHEMA,
    ERR_DEADLINE,
    ERR_DRAINING,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    RequestError,
)
from repro.api.protocol import parse_request_line, response_line
from repro.api.types import DseRequest
from repro.api.wire import WireError
from repro.server.lifecycle import (
    Lifecycle,
    await_quiesced,
    install_signal_handlers,
)
from repro.server.state import GridStore, ServerConfig, ServerStats, grid_key

__all__ = ["ReproServer", "serve_forever"]


class _Connection:
    """One client socket plus its interleaving-proof writer queue."""

    def __init__(self, conn_id: str, writer: asyncio.StreamWriter) -> None:
        self.id = conn_id
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue()
        self.closed = False
        self.writer_task: asyncio.Task | None = None

    def send(self, request_id: str, kind: str, payload) -> None:
        """Queue one response line (event-loop thread only)."""
        if not self.closed:
            self.queue.put_nowait(response_line(request_id, kind, payload))

    async def run_writer(self) -> None:
        try:
            while True:
                item = await self.queue.get()
                if item is None:
                    break
                self.writer.write(item)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    async def close(self) -> None:
        self.closed = True
        self.queue.put_nowait(None)
        if self.writer_task is not None:
            await self.writer_task
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@dataclass(slots=True)
class _Job:
    """One admitted request waiting for (or holding) an execution slot."""

    conn: _Connection | None  # None for startup-recovery jobs
    request_id: str
    verb: str
    request: object
    #: Event-loop clock at admission; a request deadline covers queue
    #: time too, so the budget starts counting here, not at execution.
    admitted_at: float = field(default=0.0)

    def send(self, kind: str, payload) -> None:
        if self.conn is not None:
            self.conn.send(self.request_id, kind, payload)


class ReproServer:
    """The daemon: admission control, fair-share scheduling, recovery."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.stats = ServerStats()
        self.store = GridStore(config.state_dir)
        self.lifecycle = Lifecycle()
        self._connections: set[_Connection] = set()
        self._queues: dict[str, deque] = {}
        self._rr: deque[str] = deque()
        self._work = asyncio.Condition()
        self._slots = asyncio.Semaphore(max(1, config.max_inflight))
        self._grid_lock = asyncio.Lock()
        self._grid_futures: dict[str, asyncio.Future] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, config.max_inflight),
            thread_name_prefix="repro-serve",
        )
        self._conn_ids = count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._scheduler_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind, start the scheduler, queue crash recovery; return address."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._scheduler_task = asyncio.create_task(self._scheduler())
        await self._queue_recovery()
        host, port = self._server.sockets[0].getsockname()[:2]
        self.lifecycle.mark_serving()
        return host, port

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def _idle(self) -> bool:
        return self.stats.queued == 0 and self.stats.inflight == 0

    async def drain(self) -> bool:
        """Stop accepting, let admitted work finish within the budget.

        The listener closes immediately (``lifecycle`` is already
        ``draining``, so connected clients get ``draining`` rejections
        for new work while keeping ping/stats/health). Returns True if
        the server went quiescent inside ``drain_timeout_s``, False if
        the budget ran out with work still in flight — in which case
        everything durable (journals, per-cell checkpoints) is already
        on disk and the next start resumes it.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        return await await_quiesced(self._idle, self.config.drain_timeout_s)

    async def aclose(self, *, graceful: bool = True) -> None:
        """Tear down. ``graceful`` waits for already-running pool work.

        The historical bug here was ``shutdown(wait=False)`` on the
        *clean* path too: a sim still finishing in a pool thread lost
        the race with interpreter teardown. Clean exits now wait for
        running futures (queued ones are cancelled either way); only
        the forced drain-timeout path skips the wait.
        """
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections):
            await conn.close()
        if graceful:
            await asyncio.to_thread(
                self._pool.shutdown, wait=True, cancel_futures=True
            )
        else:
            self._pool.shutdown(wait=False, cancel_futures=True)

    async def _queue_recovery(self) -> None:
        """Re-admit journaled grids a previous process never finished."""
        # The crash scan stats + parses every journal file; off the loop.
        for key, request in await asyncio.to_thread(self.store.incomplete):
            self.stats.recovered_grids += 1
            verb = "dse" if isinstance(request, DseRequest) else "grid"
            self._admit(
                _Job(conn=None, request_id=f"recover-{key[:8]}", verb=verb,
                     request=request, admitted_at=self._loop.time()),
                client="__recovery__",
                unbounded=True,
            )
        if self.stats.recovered_grids:
            print(
                f"[repro-serve] resuming {self.stats.recovered_grids} "
                "unfinished grid(s) from checkpoints",
                file=sys.stderr,
                flush=True,
            )
        async with self._work:
            self._work.notify_all()

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(f"conn{next(self._conn_ids)}", writer)
        conn.writer_task = asyncio.create_task(conn.run_writer())
        self.stats.connections += 1
        self._connections.add(conn)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                await self._handle_line(conn, line)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(conn)
            await conn.close()

    async def _handle_line(self, conn: _Connection, line: bytes) -> None:
        self.stats.requests += 1
        try:
            request_id, verb, request = parse_request_line(line)
        except WireError as exc:
            rid = _best_effort_id(line)
            conn.send(rid, "error", facade.api_error(ERR_BAD_SCHEMA, str(exc)))
            return
        if verb == "health":
            conn.send(request_id, "result", self._health_result())
            return
        if verb in ("ping", "stats"):
            conn.send(request_id, "result", self._stats_result())
            return
        if self.lifecycle.draining:
            # Observability verbs above still answer during a drain;
            # new work does not start. The code is retryable: a client
            # with a RetryPolicy resubmits against the restarted server
            # and joins/resumes via the grid journal.
            conn.send(
                request_id,
                "error",
                facade.api_error(
                    ERR_DRAINING,
                    "server is draining (shutdown requested); "
                    "resubmit after restart — journaled grids resume",
                ),
            )
            return
        try:
            if verb == "sim":
                facade.validate_sim(request)
            elif verb == "dse":
                facade.validate_dse(request)
            else:
                facade.validate_grid(request)
        except RequestError as exc:
            conn.send(request_id, "error", facade.api_error(exc.code, str(exc)))
            return
        job = _Job(
            conn=conn,
            request_id=request_id,
            verb=verb,
            request=request,
            admitted_at=self._loop.time(),
        )
        if not self._admit(job, client=conn.id):
            self.stats.overload_rejections += 1
            conn.send(
                request_id,
                "error",
                facade.api_error(
                    ERR_OVERLOADED,
                    f"client queue full "
                    f"(max_queued_per_client={self.config.max_queued_per_client})",
                ),
            )
            return
        job.send(
            "event",
            facade.progress_event("queued", request_id=request_id),
        )
        async with self._work:
            self._work.notify_all()

    def _stats_result(self):
        snapshot = self.stats.snapshot()
        snapshot["lifecycle"] = self.lifecycle.state
        snapshot["store_io_errors"] = self.store.io_errors
        snapshot["store_quarantined"] = self.store.quarantined
        return facade.stats_result(server=snapshot)

    def _health_result(self):
        return facade.health_result(
            self.lifecycle.state,
            queued=self.stats.queued,
            inflight=self.stats.inflight,
            connections=len(self._connections),
            detail=self.lifecycle.reason,
        )

    # ------------------------------------------------------------------
    # admission + fair-share scheduling
    # ------------------------------------------------------------------
    def _admit(self, job: _Job, *, client: str, unbounded: bool = False) -> bool:
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = deque()
            self._rr.append(client)
        if not unbounded and len(queue) >= self.config.max_queued_per_client:
            return False
        queue.append(job)
        self.stats.queued += 1
        return True

    async def _next_job(self) -> _Job:
        """Round-robin over clients that currently have queued work."""
        async with self._work:
            while True:
                for _ in range(len(self._rr)):
                    client = self._rr[0]
                    self._rr.rotate(-1)
                    queue = self._queues[client]
                    if queue:
                        self.stats.queued -= 1
                        return queue.popleft()
                await self._work.wait()

    async def _scheduler(self) -> None:
        while True:
            await self._slots.acquire()
            try:
                job = await self._next_job()
            except asyncio.CancelledError:
                self._slots.release()
                raise
            self.stats.inflight += 1
            asyncio.create_task(self._execute(job))

    def _deadline_remaining(self, job: _Job) -> float | None:
        """Budget left of the request's deadline, queue time included."""
        deadline = getattr(job.request, "deadline_s", 0.0) or 0.0
        if deadline <= 0:
            return None
        return deadline - (self._loop.time() - job.admitted_at)

    @staticmethod
    def _deadline_error(job: _Job, where: str) -> RequestError:
        budget = getattr(job.request, "deadline_s", 0.0)
        return RequestError(
            f"deadline of {budget:g}s exceeded {where}; completed grid "
            "cells are checkpointed — resubmit to resume",
            code=ERR_DEADLINE,
        )

    async def _execute(self, job: _Job) -> None:
        try:
            remaining = self._deadline_remaining(job)
            if remaining is not None and remaining <= 0:
                raise self._deadline_error(job, "while queued")
            if job.verb == "sim":
                await self._run_sim_job(job, remaining)
            else:
                await self._run_grid_job(job, remaining)
        except RequestError as exc:
            job.send("error", facade.api_error(exc.code, str(exc)))
        except Exception as exc:  # noqa: BLE001 — must never kill the daemon
            self.stats.failures += 1
            job.send(
                "error",
                facade.api_error(ERR_INTERNAL, f"{type(exc).__name__}: {exc}"),
            )
        finally:
            self.stats.inflight -= 1
            self._slots.release()

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    async def _run_sim_job(self, job: _Job, remaining: float | None) -> None:
        job.send("event", facade.progress_event("started", request_id=job.request_id))
        call = self._loop.run_in_executor(
            self._pool, facade.run_sim, job.request
        )
        if remaining is None:
            result = await call
        else:
            # The pool thread cannot be interrupted (SIGALRM is a no-op
            # off the main thread), so the budget bounds the *wait*:
            # the abandoned sim finishes in the background and only
            # wastes its own slot, never blocking the response.
            try:
                result = await asyncio.wait_for(call, timeout=remaining)
            except asyncio.TimeoutError:
                raise self._deadline_error(job, "before the sim finished") from None
        self.stats.sims_done += 1
        job.send("result", result)

    async def _run_grid_job(self, job: _Job, remaining: float | None) -> None:
        key = grid_key(job.request)
        existing = self._grid_futures.get(key)
        if existing is not None:
            # Identical grid already executing: join it instead of
            # re-running — both requesters get the same result object.
            self.stats.grids_joined += 1
            job.send(
                "event",
                facade.progress_event(
                    "attached", request_id=job.request_id, detail=f"grid {key}"
                ),
            )
            if remaining is None:
                result = await asyncio.shield(existing)
            else:
                try:
                    result = await asyncio.wait_for(
                        asyncio.shield(existing), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    raise self._deadline_error(
                        job, "while joined to the running grid"
                    ) from None
            job.send("result", result)
            return

        future = self._loop.create_future()
        future.add_done_callback(lambda f: f.exception())  # joiner-less errors
        self._grid_futures[key] = future
        try:
            # Durable (fsync'd) writes stall the loop; push them to a thread.
            await asyncio.to_thread(self.store.journal, key, job.request)
            job.send(
                "event", facade.progress_event("started", request_id=job.request_id)
            )
            emit = self._cell_emitter(job)
            checkpoint_path = (
                self.store.checkpoint_path(key) if self.store.enabled else None
            )
            # ``dse`` shares the whole grid-job path (content-addressed
            # dedupe, journal, keyed checkpoint, serialized execution) —
            # only the facade runner differs.
            runner = partial(
                facade.run_dse if job.verb == "dse" else facade.run_grid,
                job.request,
                progress=emit,
                checkpoint_path=checkpoint_path,
                resume=True,
            )
            # Grids serialize: collector/checkpoint/progress attachments
            # are process-global in the harness.
            async with self._grid_lock:
                # Re-derive the budget after the queue + grid-lock wait;
                # the scope is entered *inside* the worker thread (it is
                # thread-local) and takes the min with the facade's own
                # request-level scope, so queue time counts too.
                remaining = self._deadline_remaining(job)
                if remaining is not None and remaining <= 0:
                    raise self._deadline_error(job, "while queued")
                result = await self._loop.run_in_executor(
                    self._pool, partial(_run_scoped, runner, remaining)
                )
            if result.resumed_cells:
                job.send(
                    "event",
                    facade.progress_event(
                        "recovered",
                        request_id=job.request_id,
                        completed=result.resumed_cells,
                        detail="cells served from checkpoint",
                    ),
                )
            await asyncio.to_thread(self.store.complete, key, result)
            self.stats.grids_done += 1
            future.set_result(result)
            job.send("result", result)
        except BaseException as exc:
            future.set_exception(exc)
            raise
        finally:
            self._grid_futures.pop(key, None)

    def _cell_emitter(self, job: _Job):
        """Thread-safe per-cell progress forwarder for one grid job."""

        def emit(event) -> None:  # called from a pool thread
            tagged = facade.progress_event(
                event.stage,
                request_id=job.request_id,
                completed=event.completed,
                total=event.total,
                detail=event.detail,
            )
            self._loop.call_soon_threadsafe(job.send, "event", tagged)

        return emit


def _run_scoped(runner, remaining: float | None):
    """Run a facade call on a pool thread under a deadline scope."""
    from repro.harness import faults

    with faults.deadline_scope(remaining):
        return runner()


def _best_effort_id(line: bytes) -> str:
    """The envelope id of an unparseable line, when salvageable."""
    import json

    try:
        envelope = json.loads(line.decode())
        rid = envelope.get("id", "")
        return rid if isinstance(rid, str) else ""
    except (ValueError, AttributeError, UnicodeDecodeError):
        return ""


async def _serve(config: ServerConfig) -> None:
    server = ReproServer(config)
    host, port = await server.start()
    install_signal_handlers(asyncio.get_running_loop(), server.lifecycle)
    print(
        f"repro-serve listening on {host}:{port} "
        f"(max-inflight={config.max_inflight}, "
        f"max-queued-per-client={config.max_queued_per_client}, "
        f"state-dir={config.state_dir or '<none>'}, "
        f"drain-timeout={config.drain_timeout_s:g}s)",
        flush=True,
    )
    serve_task = asyncio.create_task(server.serve_forever())
    drain_task = asyncio.create_task(server.lifecycle.wait_drain_requested())
    try:
        done, _ = await asyncio.wait(
            {serve_task, drain_task}, return_when=asyncio.FIRST_COMPLETED
        )
    except asyncio.CancelledError:
        serve_task.cancel()
        drain_task.cancel()
        await server.aclose()
        return
    if drain_task not in done:
        # serve_forever ended on its own (socket error); surface it.
        drain_task.cancel()
        try:
            await server.aclose()
        finally:
            serve_task.result()
        return
    serve_task.cancel()
    try:
        await serve_task
    except (asyncio.CancelledError, Exception):
        pass
    print(
        f"repro-serve: drain requested ({server.lifecycle.reason}); "
        "finishing in-flight work",
        file=sys.stderr,
        flush=True,
    )
    quiesced = await server.drain()
    if quiesced:
        await server.aclose(graceful=True)
        print("repro-serve: drained cleanly", file=sys.stderr, flush=True)
        return
    # Budget spent with work still running. Everything durable is
    # already fsync'd (journals, per-cell checkpoints), and the pool's
    # non-daemon threads would block a normal interpreter exit — so
    # flush and leave immediately. An orderly-but-forced drain is
    # still a success: exit 0, work resumes on the next start.
    print(
        f"repro-serve: drain timeout ({config.drain_timeout_s:g}s) hit "
        "with work in flight; forcing exit — journaled grids resume "
        "on restart",
        file=sys.stderr,
        flush=True,
    )
    sys.stdout.flush()
    sys.stderr.flush()
    os._exit(0)


def serve_forever(config: ServerConfig) -> None:
    """Blocking entry point used by ``python -m repro serve``."""
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:
        # Platforms without loop signal handlers (Windows) land here;
        # with handlers installed SIGINT drains gracefully instead.
        print("repro-serve: interrupted, shutting down", file=sys.stderr)
