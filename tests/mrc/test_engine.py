"""MRC engine: deterministic sampling and one-pass curve estimation."""

import numpy as np
import pytest

from repro.harness.runner import ExperimentSetup
from repro.mrc.engine import MRCSpec, mrc_pass, sample_addresses
from repro.mrc.ghost import GhostCache

SETUP = ExperimentSetup(num_cores=4, accesses_per_core=1500)


@pytest.fixture(scope="module")
def addresses():
    return SETUP.trace_records("Q2").addresses


class TestSampling:
    def test_rate_one_keeps_everything(self, addresses):
        assert sample_addresses(addresses, 1.0, seed=1) == addresses.tolist()

    def test_same_seed_same_subset(self, addresses):
        first = sample_addresses(addresses, 0.5, seed=7)
        second = sample_addresses(addresses, 0.5, seed=7)
        assert first == second

    def test_different_seeds_differ(self, addresses):
        assert sample_addresses(addresses, 0.5, seed=1) != sample_addresses(
            addresses, 0.5, seed=2
        )

    def test_scalar_path_matches_numpy_path(self, addresses):
        # The list input exercises the explicit-mask scalar fallback;
        # both must select the identical sub-stream.
        vectorized = sample_addresses(addresses, 0.3, seed=5)
        scalar = sample_addresses(addresses.tolist(), 0.3, seed=5)
        assert vectorized == scalar

    def test_kept_fraction_tracks_rate(self):
        # Many distinct 4 KB frames so the binomial estimate is tight.
        frames = np.arange(4000, dtype=np.uint64) << np.uint64(12)
        kept = sample_addresses(frames, 0.25, seed=3)
        assert 0.18 < len(kept) / len(frames) < 0.32

    def test_frames_are_kept_or_dropped_whole(self):
        # SHARDS-style spatial sampling: every 64 B line of a 4 KB
        # frame shares the frame's fate, so reuse inside kept frames
        # survives intact.
        frame = 123 << 12
        lines = [frame + offset for offset in range(0, 4096, 64)]
        kept = sample_addresses(lines, 0.5, seed=1)
        assert len(kept) in (0, len(lines))

    def test_sampling_is_an_order_preserving_filter(self, addresses):
        # Membership is per-address (deterministic), so the sampled
        # stream is exactly the original filtered in place.
        kept = sample_addresses(addresses, 0.5, seed=9)
        members = set(kept)
        assert kept == [a for a in addresses.tolist() if a in members]


class TestSpecValidation:
    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="no curves"):
            MRCSpec().validate()

    @pytest.mark.parametrize("rate", [0.0, -0.5, 1.5])
    def test_bad_sample_rate_rejected(self, rate):
        with pytest.raises(ValueError, match="sample_rate"):
            MRCSpec(block_sizes=(64,), sample_rate=rate).validate()

    @pytest.mark.parametrize("fraction", [-0.1, 1.0])
    def test_bad_warmup_fraction_rejected(self, fraction):
        with pytest.raises(ValueError, match="warmup_fraction"):
            MRCSpec(block_sizes=(64,), warmup_fraction=fraction).validate()


class TestMrcPass:
    def test_one_pass_yields_every_curve(self, addresses):
        result = mrc_pass(
            addresses,
            MRCSpec(
                capacities=(1 << 20, 1 << 22),
                block_sizes=(64, 512),
                associativities=(4, 8),
                xy_capacities=(1 << 20,),
                base_capacity=1 << 22,
                seed=SETUP.seed,
            ),
        )
        assert [p.param for p in result.capacity] == [1 << 20, 1 << 22]
        assert [p.param for p in result.block_size] == [64, 512]
        assert [p.param for p in result.associativity] == [4, 8]
        assert [p.param for p in result.xy] == [1 << 20]
        assert result.total_records == result.sampled_records == len(addresses)
        # One (X, Y) sweep fans out to a ghost per allowed state.
        assert result.ghosts > 6
        assert set(result.best_xy) == {1 << 20}

    def test_full_rate_points_are_exact(self, addresses):
        # At sample rate 1.0 a curve point is the literal ghost walk —
        # integer hits/accesses, zero standard error.
        result = mrc_pass(
            addresses, MRCSpec(block_sizes=(256,), base_capacity=1 << 22)
        )
        [point] = result.block_size
        ghost = GhostCache(1 << 22, 8, 256)
        ghost.consume(addresses.tolist())
        assert (point.hits, point.accesses) == (ghost.hits, ghost.accesses)
        assert point.stderr == 0.0
        assert point.hit_rate == ghost.hit_rate
        assert point.miss_rate == ghost.miss_rate

    def test_pass_is_deterministic(self, addresses):
        spec = MRCSpec(block_sizes=(64, 512), sample_rate=0.5, seed=3)
        assert mrc_pass(addresses, spec) == mrc_pass(addresses, spec)

    def test_sampled_pass_reports_error_bars(self, addresses):
        result = mrc_pass(
            addresses,
            MRCSpec(block_sizes=(64,), sample_rate=0.5, seed=1),
        )
        assert 0 < result.sampled_records < result.total_records
        [point] = result.block_size
        if 0.0 < point.hit_rate < 1.0:
            assert point.stderr > 0.0

    def test_sampled_estimate_tracks_full_pass(self, addresses):
        spec = MRCSpec(
            block_sizes=(512,), base_capacity=SETUP.system.dram_cache.capacity
        )
        full = mrc_pass(addresses, spec).block_size[0]
        sampled = mrc_pass(
            addresses,
            MRCSpec(
                block_sizes=(512,),
                base_capacity=SETUP.system.dram_cache.capacity,
                sample_rate=0.5,
                seed=SETUP.seed,
            ),
        ).block_size[0]
        # Loose bound: the scaled-capacity sampled estimate stays in
        # the neighbourhood of the exact curve (tight 2% bound is the
        # dse_smoke CI gate at rate 1.0; docs/dse.md).
        assert abs(sampled.hit_rate - full.hit_rate) < 0.15

    def test_warmup_fraction_shrinks_measured_window(self, addresses):
        warmed = mrc_pass(
            addresses, MRCSpec(block_sizes=(64,), warmup_fraction=0.5)
        ).block_size[0]
        n = len(addresses)
        assert warmed.accesses == n - n // 2 + 1
