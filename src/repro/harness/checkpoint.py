"""Crash-safe JSONL checkpoints: resume a killed grid campaign.

Every completed grid cell is appended — one JSON line, flushed and
fsync'd — to a checkpoint file beside the export artifact, so a run
killed at cell N still holds cells 0..N-1 on disk. ``repro run
--resume <ckpt>`` reattaches the file: cells whose key is already
present are served from the checkpoint (bit-identical values, since
results are JSON scalars that round-trip exactly) and only the missing
ones are recomputed.

Format (schema-versioned)::

    {"schema": 1, "kind": "header", "created": "..."}
    {"schema": 1, "kind": "cell", "index": 0, "key": "ab12...",
     "wall_s": 1.25, "result": {...}}

Robustness properties:

* appends are flushed + fsync'd per cell — a ``SIGKILL`` between cells
  loses nothing, a kill mid-write loses at most the torn last line;
* the loader skips torn/foreign lines instead of failing, so a
  checkpoint is never a worse starting point than no checkpoint;
* cell keys hash the worker function and the cell's full ``repr`` —
  resuming with a different grid (other schemes, mixes, seeds, or code
  revision that changed the cell dataclass) simply misses and recomputes.

Results must round-trip bit-identically through JSON so a resumed run's
rows equal an uninterrupted run's. Floats and ints do (``repr`` round
trip); JSON arrays are revived as *tuples* on load, matching the
convention that grid workers return tuples for sequence-valued stats
(``global_state``) and never lists.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO

__all__ = [
    "CHECKPOINT_SCHEMA",
    "MISSING",
    "cell_key",
    "GridCheckpoint",
    "attach",
    "active",
    "default_path",
]

CHECKPOINT_SCHEMA = 1

# Sentinel distinguishing "no checkpoint entry" from a stored None.
MISSING = object()


def cell_key(func, cell) -> str:
    """Stable identity of one (worker, cell) pair across processes.

    Cells are frozen dataclasses whose ``repr`` is a pure function of
    their parameters, so the key survives process restarts but changes
    whenever any parameter (scheme, mix, seed, config) does.
    """
    func_name = f"{getattr(func, '__module__', '?')}.{getattr(func, '__qualname__', '?')}"
    payload = f"{func_name}|{cell!r}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def default_path(export_path: str) -> str:
    """Where ``repro run --export X`` keeps its checkpoint: ``X.ckpt.jsonl``."""
    return f"{export_path}.ckpt.jsonl"


def _revive(value):
    """Undo JSON's lossy sequence mapping: arrays come back as tuples."""
    if isinstance(value, list):
        return tuple(_revive(v) for v in value)
    if isinstance(value, dict):
        return {k: _revive(v) for k, v in value.items()}
    return value


def _jsonable(value):
    """JSON encoding that tolerates numpy scalars (via ``.item()``)."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"checkpoint result not JSON-serializable: {type(value)!r}")


class GridCheckpoint:
    """One append-only checkpoint file, shared by every grid in a run."""

    def __init__(self, path: str | Path, *, resume: bool = False) -> None:
        self.path = str(path)
        self.resume = resume
        self._results: dict[str, object] = {}
        self._stream: IO[str] | None = None
        self.loaded = 0
        self.skipped_lines = 0
        self.hits = 0
        self.appended = 0
        if resume:
            self._load()
        Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        # Fresh runs truncate (stale cells from an unrelated grid must
        # not survive); resumed runs keep appending to the same file.
        self._stream = open(self.path, "a" if resume else "w")
        if not resume:
            self._write_line(
                {
                    "schema": CHECKPOINT_SCHEMA,
                    "kind": "header",
                    "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
                }
            )

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            text = Path(self.path).read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.skipped_lines += 1  # torn tail from a mid-write kill
                continue
            if (
                not isinstance(record, dict)
                or record.get("schema") != CHECKPOINT_SCHEMA
                or record.get("kind") != "cell"
                or "key" not in record
            ):
                if not (isinstance(record, dict) and record.get("kind") == "header"):
                    self.skipped_lines += 1
                continue
            self._results[record["key"]] = _revive(record.get("result"))
            self.loaded += 1

    def lookup(self, key: str):
        """The stored result for ``key``, or :data:`MISSING`."""
        if key in self._results:
            self.hits += 1
            return self._results[key]
        return MISSING

    def append(self, *, index: int, key: str, result, wall_s: float) -> None:
        """Durably record one completed cell (flush + fsync per line)."""
        self._write_line(
            {
                "schema": CHECKPOINT_SCHEMA,
                "kind": "cell",
                "index": index,
                "key": key,
                "wall_s": round(wall_s, 6),
                "result": result,
            }
        )
        self._results[key] = result
        self.appended += 1

    def _write_line(self, record: dict) -> None:
        if self._stream is None:
            return
        try:
            self._stream.write(json.dumps(record, default=_jsonable) + "\n")
            self._stream.flush()
            os.fsync(self._stream.fileno())
        except (OSError, TypeError, ValueError):
            # A checkpoint must never take the run down with it: an
            # unserializable result or a full disk just loses resumability
            # for that cell.
            pass

    def close(self) -> None:
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None


# ----------------------------------------------------------------------
# active checkpoint (installed by the CLI around an experiment call)
# ----------------------------------------------------------------------
_active: GridCheckpoint | None = None


@contextmanager
def attach(path: str | Path, *, resume: bool = False):
    """Scope in which every ``run_grid`` checkpoints into ``path``."""
    global _active
    previous = _active
    _active = ckpt = GridCheckpoint(path, resume=resume)
    try:
        yield ckpt
    finally:
        ckpt.close()
        _active = previous


def active() -> GridCheckpoint | None:
    return _active
