"""Wire codec: ``repro.api`` dataclasses <-> newline-delimited JSON.

One dict shape per type::

    {"type": "SimRequest", "schema": 2, "scheme": "bimodal", ...}

``to_wire``/``from_wire`` convert between instances and those dicts;
``encode_line``/``decode_line`` add the JSON + newline framing the
socket protocol uses (``docs/service.md``). Decoding is strict:

* unknown ``type`` names, missing required fields and unexpected
  fields are :class:`WireError`\\ s (a typo'd request must fail loudly,
  not half-apply);
* a ``schema`` outside [:data:`~repro.api.types.API_SCHEMA_MIN`,
  :data:`~repro.api.types.API_SCHEMA`] is rejected. Older schemas in
  that range decode *skew-tolerantly*: every field added since them
  has a default, so a v1 payload instantiates the current dataclass
  with the new fields defaulted and its ``schema`` normalized to the
  current version (re-encoding, content-addressing and equality all
  see one canonical form);
* non-finite floats (NaN/Infinity) are rejected in both directions —
  they are not representable in interoperable JSON, so a stats payload
  carrying one fails with a typed error instead of emitting a frame
  only Python's parser can read back.

Byte-identity through the wire: JSON maps tuples to arrays, so decode
revives arrays as *tuples* — recursively, inside dict-valued fields too
— matching the grid/checkpoint convention that sequence-valued stats
are tuples, never lists (see ``repro.harness.checkpoint``). Ints and
finite floats round-trip exactly (``repr`` round trip), so a result
decoded from the wire compares equal to the instance the server
encoded.
"""

from __future__ import annotations

import json
import math
from dataclasses import fields, is_dataclass

from repro.api.types import (
    API_SCHEMA,
    API_SCHEMA_MIN,
    ApiError,
    DseRequest,
    DseResult,
    GridRequest,
    GridResult,
    HealthResult,
    ProgressEvent,
    SimRequest,
    SimResult,
    StatsResult,
)

__all__ = [
    "WIRE_TYPES",
    "WireError",
    "decode_line",
    "dumps_strict",
    "encode_line",
    "from_wire",
    "loads_strict",
    "to_wire",
]


class WireError(ValueError):
    """Malformed or version-incompatible wire payload."""


#: Every encodable/decodable dataclass, by wire ``type`` name.
WIRE_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        SimRequest,
        GridRequest,
        DseRequest,
        ProgressEvent,
        SimResult,
        GridResult,
        DseResult,
        StatsResult,
        HealthResult,
        ApiError,
    )
}

# Fields revived tuple-wise on decode (annotation says tuple).
_TUPLE_FIELDS: dict[str, set[str]] = {
    name: {
        f.name
        for f in fields(cls)
        if str(f.type).startswith("tuple")
    }
    for name, cls in WIRE_TYPES.items()
}
# dict-valued fields get the recursive list->tuple revive as well,
# because stats/rows payloads may carry tuple-valued entries.
_DICT_FIELDS: dict[str, set[str]] = {
    name: {f.name for f in fields(cls) if str(f.type) == "dict"}
    for name, cls in WIRE_TYPES.items()
}


def _revive(value):
    """Undo JSON's lossy sequence mapping: arrays come back as tuples."""
    if isinstance(value, list):
        return tuple(_revive(v) for v in value)
    if isinstance(value, dict):
        return {k: _revive(v) for k, v in value.items()}
    return value


def _plain(value):
    """Dataclass-free, JSON-encodable view of one field value."""
    if isinstance(value, tuple):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    return value


def _reject_constant(token: str):
    raise WireError(
        f"non-finite float {token} is not valid wire JSON "
        "(NaN/Infinity are rejected, not guessed at)"
    )


def dumps_strict(payload) -> str:
    """Compact JSON refusing NaN/Infinity with a :class:`WireError`."""
    try:
        return json.dumps(payload, separators=(",", ":"), allow_nan=False)
    except ValueError as exc:
        if _contains_non_finite(payload):
            raise WireError(
                "payload carries a non-finite float (NaN/Infinity); "
                "such values do not survive interoperable JSON"
            ) from None
        raise WireError(f"unencodable payload: {exc}") from None


def loads_strict(text: str):
    """``json.loads`` that rejects NaN/Infinity literals."""
    try:
        return json.loads(text, parse_constant=_reject_constant)
    except WireError:
        raise
    except ValueError as exc:
        raise WireError(f"not JSON: {exc}") from None


def _contains_non_finite(value) -> bool:
    if isinstance(value, float):
        return not math.isfinite(value)
    if isinstance(value, (list, tuple)):
        return any(_contains_non_finite(v) for v in value)
    if isinstance(value, dict):
        return any(_contains_non_finite(v) for v in value.values())
    return False


def to_wire(obj) -> dict:
    """One JSON-ready dict (``type`` tag + every field) for ``obj``."""
    name = type(obj).__name__
    if name not in WIRE_TYPES or not is_dataclass(obj):
        raise WireError(f"not a wire type: {type(obj)!r}")
    out: dict = {"type": name}
    for f in fields(obj):
        out[f.name] = _plain(getattr(obj, f.name))
    return out


def from_wire(payload: dict):
    """Validate and instantiate the typed object ``payload`` describes."""
    if not isinstance(payload, dict):
        raise WireError(f"wire payload must be an object, got {type(payload).__name__}")
    name = payload.get("type")
    cls = WIRE_TYPES.get(name)
    if cls is None:
        known = ", ".join(sorted(WIRE_TYPES))
        raise WireError(f"unknown wire type {name!r} (known: {known})")
    schema = payload.get("schema", None)
    if (
        isinstance(schema, bool)
        or not isinstance(schema, int)
        or not API_SCHEMA_MIN <= schema <= API_SCHEMA
    ):
        raise WireError(
            f"unsupported {name} schema {schema!r} "
            f"(this build speaks schemas {API_SCHEMA_MIN}..{API_SCHEMA})"
        )
    spec = {f.name: f for f in fields(cls)}
    kwargs = {}
    for key, value in payload.items():
        if key == "type":
            continue
        if key not in spec:
            raise WireError(f"unexpected field {key!r} for {name}")
        if key in _TUPLE_FIELDS[name] or key in _DICT_FIELDS[name]:
            value = _revive(value)
        kwargs[key] = value
    # Skew-tolerant normalization: an accepted older-schema payload
    # becomes a current-schema instance (new fields defaulted above).
    kwargs["schema"] = API_SCHEMA
    try:
        return cls(**kwargs)
    except TypeError as exc:  # missing required field
        raise WireError(f"bad {name} payload: {exc}") from None


def encode_line(obj) -> bytes:
    """One protocol line: compact JSON + ``\\n`` (UTF-8)."""
    return (dumps_strict(to_wire(obj)) + "\n").encode()


def decode_line(line: str | bytes):
    """Parse one protocol line back into its typed object."""
    if isinstance(line, bytes):
        line = line.decode()
    return from_wire(loads_strict(line))
