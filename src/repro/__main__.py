"""Command-line front-end: subcommands over the experiment engine.

Examples::

    python -m repro run fig1 --mixes Q2 Q7 --accesses 20000
    python -m repro run fig7 --jobs auto --trace-out fig7.jsonl
    python -m repro run table3 --export out/table3.json
    python -m repro list
    python -m repro list-schemes
    python -m repro bench --repeats 5

The pre-subcommand invocation (``python -m repro fig1 ...``) keeps
working with a deprecation note; it forwards to ``repro run``.

Shared flags (``run`` and ``bench``):

* ``--jobs N|auto`` — fan grid cells over worker processes
  (sets ``REPRO_JOBS`` for every layer below);
* ``--seed N`` — workload generation seed;
* ``--trace-out FILE`` — write the observability JSONL trace there and
  stream per-cell progress to stderr (see docs/observability.md). A
  run manifest lands next to every trace/export file.
"""

from __future__ import annotations

import argparse
import os
import sys

import repro.harness.experiments as experiments
from repro.harness.reporting import print_table
from repro.harness.runner import ExperimentSetup

# name -> (function attr, needs-setup, default core count, description)
_EXPERIMENTS: dict[str, tuple[str, bool, int, str]] = {
    "fig1": ("fig1_miss_rate_vs_block_size", True, 4, "miss rate vs block size"),
    "fig2": ("fig2_block_utilization", True, 4, "sub-block utilization distribution"),
    "fig3": ("fig3_latency_breakdown", False, 4, "hit-path latency breakdown"),
    "fig5": ("fig5_mru_hits", True, 8, "hits by MRU position"),
    "fig7": ("fig7_antt", True, 4, "ANTT improvement over AlloyCache"),
    "fig8a": ("fig8a_component_analysis", True, 8, "component ANTT analysis"),
    "fig8b": ("fig8b_hit_rate", True, 4, "hit rates by scheme"),
    "fig8c": ("fig8c_access_latency", True, 4, "average LLSC miss penalty"),
    "fig9a": ("fig9a_wasted_bandwidth", True, 8, "wasted off-chip bandwidth"),
    "fig9b": ("fig9b_metadata_rbh", True, 4, "metadata RBH separate vs co-located"),
    "fig9c": ("fig9c_way_locator_hit_rate", True, 4, "way locator hit rate vs K"),
    "fig10": ("fig10_small_block_fraction", True, 4, "small-block access fraction"),
    "fig11": ("fig11_energy", True, 8, "memory energy vs AlloyCache"),
    "fig12": ("fig12_sensitivity", True, 4, "cache/block/assoc sensitivity"),
    "table1": ("table1_feature_matrix", False, 4, "qualitative feature matrix"),
    "table3": ("table3_way_locator_storage", False, 4, "way locator storage/latency"),
    "table6": ("table6_prefetch", True, 4, "interaction with prefetching"),
    "abl-threshold": ("ablation_threshold", True, 4, "utilization threshold sweep"),
    "abl-weight": ("ablation_weight", True, 4, "adaptation weight sweep"),
    "abl-sampling": ("ablation_sampling", True, 4, "tracker sampling sweep"),
    "abl-parallel": ("ablation_parallel_tag", True, 4, "parallel vs serial tags"),
    "ext-victim": ("victim_buffer_study", True, 4, "victim-buffer benefit bound"),
    "ext-dueling": ("controller_comparison", True, 4, "demand vs set-dueling"),
    "ext-spaceutil": (
        "space_utilization_comparison", True, 4, "cache space utilization"
    ),
}

_SUBCOMMANDS = ("run", "list", "list-schemes", "bench")


def _shared_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        help="worker processes for grid cells (a number or 'auto'; "
        "sets REPRO_JOBS)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write observability JSONL events to FILE (enables per-cell "
        "progress on stderr; a .manifest.json lands next to it)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the Bi-Modal DRAM Cache paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment (figure/table id)")
    run.add_argument(
        "experiment", help="experiment id (see `python -m repro list`)"
    )
    run.add_argument("--mixes", nargs="*", default=None, help="mix subset")
    run.add_argument("--cores", type=int, default=None, help="4, 8 or 16")
    run.add_argument(
        "--accesses", type=int, default=20_000, help="accesses per core"
    )
    run.add_argument("--scale", type=int, default=16, help="capacity scale")
    run.add_argument(
        "--export", default=None, help="write rows to this .json or .csv path"
    )
    run.add_argument(
        "--chart",
        default=None,
        metavar="COLUMN",
        help="also render a bar chart of this numeric column",
    )
    _shared_flags(run)

    sub.add_parser("list", help="list experiment ids")
    sub.add_parser("list-schemes", help="list registered DRAM cache schemes")

    bench = sub.add_parser(
        "bench", help="measure drive-loop throughput (records/sec)"
    )
    bench.add_argument("--scheme", default="bimodal")
    bench.add_argument("--mix", default="Q1")
    bench.add_argument("--cores", type=int, default=4)
    bench.add_argument("--accesses-per-core", type=int, default=15_000)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--modes",
        default="legacy,fast,traced",
        help="comma-separated subset of {legacy,fast,traced}",
    )
    bench.add_argument(
        "--output", default=None, help="append the entry to this JSON history"
    )
    _shared_flags(bench)

    return parser


def _apply_shared_flags(args: argparse.Namespace) -> None:
    """Propagate --jobs / --trace-out to the layers below."""
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.trace_out:
        from repro.obs import configure

        configure(args.trace_out, propagate_env=True)


def _cmd_list() -> int:
    for name, (_, _, cores, desc) in _EXPERIMENTS.items():
        print(f"  {name:14s} ({cores}-core default)  {desc}")
    return 0


def _cmd_list_schemes() -> int:
    from repro.harness.schemes import scheme_descriptions

    for name, description in scheme_descriptions().items():
        print(f"  {name:14s} {description}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness import perfbench

    _apply_shared_flags(args)
    forwarded = [
        "--scheme", args.scheme,
        "--mix", args.mix,
        "--cores", str(args.cores),
        "--accesses-per-core", str(args.accesses_per_core),
        "--repeats", str(args.repeats),
        "--modes", args.modes,
    ]
    if args.output:
        forwarded += ["--output", args.output]
    return perfbench.main(forwarded)


def _cmd_run(args: argparse.Namespace, argv: list[str]) -> int:
    if args.experiment not in _EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try `python -m repro list`")
        return 2
    _apply_shared_flags(args)
    attr, needs_setup, default_cores, desc = _EXPERIMENTS[args.experiment]
    fn = getattr(experiments, attr)
    kwargs: dict = {}
    setup = None
    if needs_setup:
        setup = ExperimentSetup(
            num_cores=args.cores or default_cores,
            scale=args.scale,
            accesses_per_core=args.accesses,
            seed=args.seed,
        )
        kwargs["setup"] = setup
        if args.mixes and "mix_name" not in fn.__code__.co_varnames:
            kwargs["mix_names"] = args.mixes

    from repro.obs import get_tracer

    tracer = get_tracer()
    with tracer.span("run", experiment=args.experiment) as span:
        rows = fn(**kwargs)
        if tracer.enabled:
            span["rows"] = len(rows)
    print_table(rows, title=f"{args.experiment}: {desc}")
    if args.chart and rows:
        from repro.harness.figures import bar_chart

        label = next(iter(rows[0]))
        print()
        print(bar_chart(rows, label=label, value=args.chart))
    if args.export:
        from repro.harness.export import export_csv, export_json

        if args.export.endswith(".csv"):
            export_csv(rows, args.export)
        else:
            export_json(rows, args.export, experiment=args.experiment)
        print(f"\nwrote {args.export}")
    _write_manifests(args, argv, setup)
    return 0


def _write_manifests(
    args: argparse.Namespace, argv: list[str], setup: ExperimentSetup | None
) -> None:
    """One manifest beside every artifact this invocation produced."""
    outputs = [p for p in (args.export, args.trace_out) if p]
    if not outputs:
        return
    from repro.obs import RunManifest

    manifest = RunManifest.collect(
        args.experiment,
        config=setup,
        seed=args.seed,
        argv=argv,
    )
    for output in outputs:
        manifest.write_next_to(output)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] not in _SUBCOMMANDS and not argv[0].startswith("-"):
        # Legacy invocation: `python -m repro fig1 ...`.
        print(
            f"note: `python -m repro {argv[0]}` is deprecated; "
            f"use `python -m repro run {argv[0]}`",
            file=sys.stderr,
        )
        argv = ["run", *argv]
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "list-schemes":
        return _cmd_list_schemes()
    if args.command == "bench":
        return _cmd_bench(args)
    return _cmd_run(args, argv)


if __name__ == "__main__":
    raise SystemExit(main())
