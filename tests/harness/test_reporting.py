"""Report rendering tests."""

from repro.harness.reporting import format_percent, format_table


class TestFormatTable:
    def test_renders_header_and_rows(self):
        rows = [{"mix": "Q1", "hit": 0.5}, {"mix": "Q2", "hit": 0.75}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "mix" in lines[1] and "hit" in lines[1]
        assert "Q1" in text and "0.750" in text

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="x")

    def test_large_numbers_grouped(self):
        text = format_table([{"bytes": 1234567.0}])
        assert "1,234,567" in text

    def test_missing_cell_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert text  # renders without KeyError


def test_format_percent():
    assert format_percent(0.1234) == "12.3%"
    assert format_percent(0.1234, digits=2) == "12.34%"
