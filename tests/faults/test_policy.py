"""FaultPolicy, CellFailure, FailureCollector and the serial timeout."""

import time

import pytest

from repro.harness import faults
from repro.harness.faults import (
    CellFailure,
    CellTimeoutError,
    FailureCollector,
    FaultPolicy,
)


class TestFaultPolicy:
    def test_defaults(self, monkeypatch):
        for name in (faults.RETRIES_ENV, faults.TIMEOUT_ENV, faults.BACKOFF_ENV):
            monkeypatch.delenv(name, raising=False)
        policy = FaultPolicy.from_env()
        assert policy.retries == 0
        assert policy.timeout_s is None
        assert policy.is_default

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv(faults.RETRIES_ENV, "3")
        monkeypatch.setenv(faults.TIMEOUT_ENV, "2.5")
        monkeypatch.setenv(faults.BACKOFF_ENV, "0.01")
        policy = FaultPolicy.from_env()
        assert policy.retries == 3
        assert policy.timeout_s == 2.5
        assert policy.backoff_s == 0.01
        assert not policy.is_default

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(faults.RETRIES_ENV, "many")
        monkeypatch.setenv(faults.TIMEOUT_ENV, "-4")
        policy = FaultPolicy.from_env()
        assert policy.retries == 0
        assert policy.timeout_s is None

    def test_backoff_is_deterministic(self):
        policy = FaultPolicy(retries=3, backoff_s=0.05)
        first = [policy.backoff(7, attempt) for attempt in (1, 2, 3)]
        second = [policy.backoff(7, attempt) for attempt in (1, 2, 3)]
        assert first == second  # pure function of (index, attempt)

    def test_backoff_grows_and_caps(self):
        policy = FaultPolicy(retries=10, backoff_s=0.05)
        values = [policy.backoff(0, attempt) for attempt in range(1, 12)]
        # Exponential envelope: each bound doubles until the cap.
        assert values[0] < values[2] < values[4]
        assert max(values) <= 5.0

    def test_backoff_jitter_varies_by_index(self):
        policy = FaultPolicy(retries=1, backoff_s=0.05)
        assert policy.backoff(0, 1) != policy.backoff(1, 1)

    def test_zero_backoff(self):
        assert FaultPolicy(backoff_s=0.0).backoff(3, 2) == 0.0


class TestCellFailure:
    def test_from_exception_captures_traceback(self):
        try:
            raise ValueError("bad cell config")
        except ValueError as exc:
            failure = CellFailure.from_exception(
                4, exc, attempts=2, wall_s=0.5, scheme="alloy", mix="Q7"
            )
        assert failure.exc_type == "ValueError"
        assert failure.message == "bad cell config"
        assert failure.attempts == 2
        assert "ValueError" in failure.traceback
        d = failure.to_dict()
        assert d["index"] == 4 and d["scheme"] == "alloy" and d["mix"] == "Q7"

    def test_describe_is_one_line(self):
        failure = CellFailure(
            index=3,
            exc_type="RuntimeError",
            message="boom\nwith detail",
            attempts=1,
            scheme="bimodal",
            mix="Q2",
        )
        line = failure.describe()
        assert "\n" not in line
        assert "RuntimeError" in line and "boom" in line
        assert "scheme=bimodal" in line and "mix=Q2" in line


class TestFailureCollector:
    def test_scoping_and_nesting(self):
        assert faults.active_collector() is None
        with faults.collect_failures() as outer:
            assert faults.active_collector() is outer
            with faults.collect_failures() as inner:
                assert faults.active_collector() is inner
            assert faults.active_collector() is outer
        assert faults.active_collector() is None

    def test_truthiness_and_dicts(self):
        collector = FailureCollector()
        assert not collector and len(collector) == 0
        collector.record(
            CellFailure(index=0, exc_type="E", message="m", attempts=1)
        )
        assert collector and len(collector) == 1
        assert collector.as_dicts()[0]["exc_type"] == "E"


class TestCellTimeout:
    def test_expires(self):
        with pytest.raises(CellTimeoutError):
            with faults.cell_timeout(0.05):
                time.sleep(5)

    def test_noop_when_disabled(self):
        with faults.cell_timeout(None):
            pass
        with faults.cell_timeout(0):
            pass

    def test_timer_cleared_after_scope(self):
        with faults.cell_timeout(0.2):
            pass
        time.sleep(0.25)  # would fire now if the timer leaked
