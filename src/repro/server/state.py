"""Server-side state: configuration, counters and the grid store.

The daemon itself (:mod:`repro.server.daemon`) is connection plumbing;
everything it needs to remember lives here so it can be exercised
without sockets:

* :class:`ServerConfig` — the admission-control and persistence knobs
  (``docs/service.md`` documents each one);
* :class:`ServerStats` — the daemon's own counters, exported under the
  ``server`` key of the ``stats`` verb;
* :class:`GridStore` — content-addressed persistence for grid requests.

Grid persistence is what makes the daemon crash-safe. Every grid
request is keyed by the SHA-256 of its canonical wire JSON (pure data,
so identical requests collide by construction) and owns three files in
the state directory::

    <key>.request.json   journal: the request, written before it runs
    <key>.ckpt.jsonl     per-cell checkpoint (repro.harness.checkpoint)
    <key>.result.json    the final GridResult, written on completion

Because every grid run attaches its keyed checkpoint with
``resume=True``, recovery and dedupe are the same mechanism: a
resubmitted or crash-recovered grid replays finished cells from the
checkpoint (surfacing as ``resumed_cells`` in the result) and computes
only what is missing. On startup the daemon asks
:meth:`GridStore.incomplete` for journaled requests that never produced
a result and re-runs them. A result file that *exists but does not
parse* (torn write, crashed mid-``complete``) is quarantined as
``<key>.result.json.corrupt`` and the grid re-runs from its checkpoint
— existence of a file is never trusted as proof of completion.

Durability failures degrade, never corrupt: a store write that raises
``OSError`` (disk full, permissions) is counted in ``io_errors`` and
the request proceeds without persistence — the client still gets a
correct result, only crash recovery for that grid is lost. The chaos
harness (:mod:`repro.server.chaos`, ``REPRO_CHAOS``) injects exactly
these failures in tests.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.api.types import DseRequest, DseResult, GridRequest, GridResult
from repro.api.wire import from_wire, to_wire
from repro.server import chaos

__all__ = ["GridStore", "ServerConfig", "ServerStats", "grid_key"]


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """Tunables of one ``repro serve`` daemon.

    ``max_inflight`` bounds concurrently *executing* requests (the
    admission semaphore); ``max_queued_per_client`` bounds each
    client's backlog — submissions past it are rejected with the
    ``overloaded`` error instead of queued, so one greedy client
    cannot monopolise memory. ``port=0`` binds an ephemeral port
    (printed on startup). ``state_dir=""`` disables grid persistence
    (no journal, no checkpoint, no crash recovery).
    ``drain_timeout_s`` bounds the graceful drain after SIGTERM/SIGINT:
    in-flight work gets that long to finish (checkpointing as it goes)
    before the process force-exits — still with status 0.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 2
    max_queued_per_client: int = 8
    state_dir: str = ""
    drain_timeout_s: float = 10.0


def grid_key(request: GridRequest | DseRequest) -> str:
    """Content hash identifying a grid/dse request (dedupe + persistence).

    ``deadline_s`` is excluded: it is execution metadata, not grid
    content. A request resubmitted with a larger (or no) budget after a
    ``deadline_exceeded`` must hash to the same key so it resumes the
    journaled checkpoint instead of recomputing from scratch.
    """
    wire = to_wire(request)
    wire.pop("deadline_s", None)
    payload = json.dumps(wire, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


class GridStore:
    """Journal/checkpoint/result files for grid requests, by key.

    Writes degrade on ``OSError`` (counted in ``io_errors``) instead of
    failing the request; reads never trust an unparseable file.
    """

    def __init__(self, state_dir: str) -> None:
        self.state_dir = state_dir
        self.io_errors = 0
        self.quarantined = 0
        if state_dir:
            os.makedirs(state_dir, exist_ok=True)

    @property
    def enabled(self) -> bool:
        return bool(self.state_dir)

    # -- paths ----------------------------------------------------------
    def _path(self, key: str, suffix: str) -> str:
        return os.path.join(self.state_dir, f"{key}.{suffix}")

    def checkpoint_path(self, key: str) -> str:
        return self._path(key, "ckpt.jsonl")

    # -- durable writes -------------------------------------------------
    def _write(self, path: str, payload: dict, op: str) -> bool:
        """tmp + fsync + rename write, subject to injected chaos."""
        action = chaos.take_fault(op)
        if action == "enospc":
            chaos.raise_enospc(path)
        if action == "torn":
            # Simulate a crash mid-write: half the serialized payload
            # lands at the *final* path, no fsync, no rename barrier.
            text = json.dumps(payload, sort_keys=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text[: len(text) // 2])
            return True
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return True

    # -- journal --------------------------------------------------------
    def journal(self, key: str, request: GridRequest) -> bool:
        """Record the request durably *before* it starts executing.

        Returns False when persistence failed (disk trouble): the grid
        still runs, it just cannot be crash-recovered.
        """
        if not self.enabled:
            return False
        path = self._path(key, "request.json")
        if os.path.exists(path):
            return True
        try:
            return self._write(path, to_wire(request), "journal")
        except OSError:
            self.io_errors += 1
            return False

    def complete(self, key: str, result: GridResult) -> bool:
        """Mark the journaled request finished by persisting its result."""
        if not self.enabled:
            return False
        path = self._path(key, "result.json")
        try:
            return self._write(path, to_wire(result), "result")
        except OSError:
            self.io_errors += 1
            return False

    # -- recovery -------------------------------------------------------
    def result(self, key: str) -> GridResult | DseResult | None:
        """The persisted result for ``key``, or None if absent/corrupt."""
        path = self._path(key, "result.json")
        try:
            with open(path, encoding="utf-8") as fh:
                result = from_wire(json.load(fh))
        except (OSError, ValueError):
            return None
        return result if isinstance(result, (GridResult, DseResult)) else None

    def _result_is_trustworthy(self, key: str) -> bool:
        """Validate (not merely stat) the result file; quarantine liars.

        A crash or torn write can leave a present-but-unparseable
        result file. Trusting its existence would silently mark the
        grid complete and *lose journaled work* — so the file must
        parse as a GridResult to count, and anything else is renamed
        to ``.corrupt`` (kept for forensics) so the grid re-runs.
        """
        path = self._path(key, "result.json")
        if not os.path.exists(path):
            return False
        if self.result(key) is not None:
            return True
        try:
            os.replace(path, path + ".corrupt")
            self.quarantined += 1
        except OSError:
            self.io_errors += 1
        return False

    def incomplete(self) -> list[tuple[str, GridRequest | DseRequest]]:
        """Journaled requests that never produced a result (crash scan)."""
        if not self.enabled or not os.path.isdir(self.state_dir):
            return []
        found: list[tuple[str, GridRequest]] = []
        for name in sorted(os.listdir(self.state_dir)):
            if not name.endswith(".request.json"):
                continue
            key = name[: -len(".request.json")]
            if self._result_is_trustworthy(key):
                continue
            try:
                with open(os.path.join(self.state_dir, name), encoding="utf-8") as fh:
                    request = from_wire(json.load(fh))
            except (OSError, ValueError):
                continue  # unreadable journal: skip, never crash startup
            if isinstance(request, (GridRequest, DseRequest)):
                found.append((key, request))
        return found


@dataclass(slots=True)
class ServerStats:
    """The daemon's own bookkeeping (the ``server`` dict of ``stats``)."""

    connections: int = 0
    requests: int = 0
    sims_done: int = 0
    grids_done: int = 0
    grids_joined: int = 0
    failures: int = 0
    overload_rejections: int = 0
    recovered_grids: int = 0
    inflight: int = 0
    queued: int = 0
    extra: dict = field(default_factory=dict)

    def snapshot(self) -> dict:
        out = {
            "connections": self.connections,
            "requests": self.requests,
            "sims_done": self.sims_done,
            "grids_done": self.grids_done,
            "grids_joined": self.grids_joined,
            "failures": self.failures,
            "overload_rejections": self.overload_rejections,
            "recovered_grids": self.recovered_grids,
            "inflight": self.inflight,
            "queued": self.queued,
        }
        out.update(self.extra)
        return out
