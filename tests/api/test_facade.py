"""The repro.api facade: validation, execution, env scoping, legacy shim."""

import os
import warnings

import pytest

from repro import api


class TestValidation:
    def test_unknown_scheme(self):
        with pytest.raises(api.RequestError, match="unknown scheme 'nope'"):
            api.sim_request("nope", "Q1")

    def test_unknown_mix(self):
        with pytest.raises(api.RequestError, match="unknown mix 'Z9' for 4 cores"):
            api.sim_request("alloy", "Z9")

    def test_bad_cores(self):
        with pytest.raises(api.RequestError, match=r"cores must be 4, 8 or 16 \(got 5\)"):
            api.sim_request("alloy", "Q1", cores=5)

    def test_bad_accesses(self):
        with pytest.raises(api.RequestError, match="accesses_per_core must be positive"):
            api.sim_request("alloy", "Q1", accesses_per_core=0)

    def test_bad_backend(self):
        with pytest.raises(api.RequestError, match="backend"):
            api.sim_request("alloy", "Q1", backend="turbo")

    def test_bad_warmup_fraction(self):
        with pytest.raises(api.RequestError, match="warmup_fraction"):
            api.sim_request("alloy", "Q1", warmup_fraction=1.5)

    def test_unknown_experiment(self):
        with pytest.raises(api.RequestError, match="unknown experiment 'nope'"):
            api.grid_request("nope")

    def test_unknown_grid_mixes_listed(self):
        with pytest.raises(
            api.RequestError, match=r"unknown mix\(es\) NOPE for 4 cores"
        ):
            api.grid_request("fig10", mixes=("Q1", "NOPE"))

    def test_negative_jobs(self):
        with pytest.raises(api.RequestError, match="jobs must be >= 0"):
            api.grid_request("fig10", jobs=-1)

    def test_jobs_auto_resolves_to_zero(self):
        assert api.grid_request("fig10", jobs="auto").jobs == 0

    def test_experiment_catalog_backs_validation(self):
        # Every catalogued id must build a valid request with defaults.
        for name in api.experiment_ids():
            assert api.grid_request(name).experiment == name


class TestDseValidation:
    def test_bad_cores(self):
        with pytest.raises(api.RequestError, match=r"cores must be 4, 8 or 16"):
            api.dse_request(cores=6)

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_bad_sample_rate(self, rate):
        with pytest.raises(api.RequestError, match=r"sample_rate"):
            api.dse_request(sample_rate=rate)

    def test_bad_max_frontier(self):
        with pytest.raises(api.RequestError, match="max_frontier must be >= 1"):
            api.dse_request(max_frontier=0)

    def test_unknown_mixes_listed(self):
        with pytest.raises(
            api.RequestError, match=r"unknown mix\(es\) NOPE for 4 cores"
        ):
            api.dse_request(mixes=("Q1", "NOPE"))

    def test_negative_jobs(self):
        with pytest.raises(api.RequestError, match="jobs must be >= 0"):
            api.dse_request(jobs=-1)

    def test_jobs_auto_resolves_to_zero(self):
        assert api.dse_request(jobs="auto").jobs == 0

    def test_defaults_validate(self):
        request = api.dse_request()
        assert request.backend == "scalar"
        assert request.sample_rate == 1.0


class TestLegacyEnvShim:
    def test_env_only_backend_warns_and_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "scalar")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            request = api.sim_request("alloy", "Q1")
        assert request.backend == "scalar"
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "REPRO_BACKEND" in str(w.message)
            for w in caught
        )

    def test_env_only_jobs_warns_and_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            request = api.grid_request("fig10")
        assert request.jobs == 3
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "REPRO_JOBS" in str(w.message)
            for w in caught
        )

    def test_explicit_argument_wins_without_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "vectorized")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            request = api.sim_request("alloy", "Q1", backend="scalar")
        assert request.backend == "scalar"
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


class TestExecution:
    def test_run_sim_matches_direct_runner(self):
        from repro.harness.runner import ExperimentSetup, run_scheme_on_mix

        request = api.sim_request("alloy", "Q1", accesses_per_core=1500)
        result = api.run_sim(request)
        direct = run_scheme_on_mix(
            "alloy",
            "Q1",
            setup=ExperimentSetup(num_cores=4, accesses_per_core=1500, seed=1),
        )
        assert result.records == direct.accesses
        assert result.end_time == direct.end_time
        assert result.stats == dict(direct.stats)
        assert result.backend == "scalar"

    def test_run_sim_is_deterministic(self):
        request = api.sim_request("bimodal", "Q1", accesses_per_core=1200)
        assert api.run_sim(request).stats == api.run_sim(request).stats

    def test_run_grid_and_progress_events(self):
        request = api.grid_request("fig10", mixes=("Q1",), accesses_per_core=800)
        events = []
        result = api.run_grid(request, progress=events.append)
        assert result.status == "ok"
        assert result.failures == ()
        assert result.rows
        assert events, "expected per-cell progress events"
        assert all(e.stage == "cell" for e in events)
        assert events[-1].completed == events[-1].total

    def test_run_grid_scopes_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        request = api.grid_request("fig10", mixes=("Q1",), accesses_per_core=600)
        api.run_grid(request)
        assert "REPRO_JOBS" not in os.environ
        assert "REPRO_BACKEND" not in os.environ

    def test_run_grid_checkpoint_resume(self, tmp_path):
        path = str(tmp_path / "grid.ckpt.jsonl")
        request = api.grid_request("fig10", mixes=("Q1",), accesses_per_core=600)
        first = api.run_grid(request, checkpoint_path=path)
        assert first.resumed_cells == 0
        second = api.run_grid(request, checkpoint_path=path, resume=True)
        assert second.resumed_cells > 0
        assert second.rows == first.rows

    def test_grid_result_survives_the_wire(self):
        request = api.grid_request("fig10", mixes=("Q1",), accesses_per_core=600)
        result = api.run_grid(request)
        assert api.decode_line(api.encode_line(result)).rows == result.rows

    def test_stats_result_shape(self):
        stats = api.stats_result(server={"jobs": 1})
        assert stats.server == {"jobs": 1}
        assert "memory_hits" in stats.trace_cache
        assert isinstance(stats.metrics, dict)


class TestDseExecution:
    """run_dse rides the grid execution contract end to end."""

    def _request(self):
        return api.dse_request(mixes=("Q1",), accesses_per_core=600, jobs=2)

    def test_run_dse_result_shape(self):
        events = []
        result = api.run_dse(self._request(), progress=events.append)
        assert result.status == "ok"
        assert result.failures == ()
        assert len(result.rows) == 36
        assert result.winner["sim_fraction"] == 1.0
        assert result.stats["speedup"] >= 5.0
        assert events and all(e.stage == "cell" for e in events)

    def test_run_dse_checkpoint_resume(self, tmp_path):
        path = str(tmp_path / "dse.ckpt.jsonl")
        request = self._request()
        first = api.run_dse(request, checkpoint_path=path)
        assert first.resumed_cells == 0
        second = api.run_dse(request, checkpoint_path=path, resume=True)
        assert second.resumed_cells > 0
        assert second.rows == first.rows
        assert second.winner == first.winner

    def test_dse_result_survives_the_wire(self):
        result = api.run_dse(self._request())
        revived = api.decode_line(api.encode_line(result))
        assert revived.rows == result.rows
        assert revived.stats == result.stats
