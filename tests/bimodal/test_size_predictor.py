"""Block size predictor and utilization tracker tests."""

import pytest
from hypothesis import given, strategies as st

from repro.bimodal.size_predictor import BlockSizePredictor, UtilizationTracker


class TestClassification:
    def test_threshold_rule(self):
        p = BlockSizePredictor(threshold=5)
        assert p.classify(5)
        assert p.classify(8)
        assert not p.classify(4)
        assert not p.classify(1)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BlockSizePredictor(threshold=0)
        with pytest.raises(ValueError):
            BlockSizePredictor(threshold=9)
        with pytest.raises(ValueError):
            BlockSizePredictor(index_bits=0)


class TestCounters:
    def test_cold_prediction_is_big(self):
        """Counters start at '10': all blocks initialized big (III-B4)."""
        p = BlockSizePredictor(index_bits=6)
        assert p.predict_big(12345)

    def test_one_small_training_flips_to_small(self):
        """Weakly-big initialization: one sparse observation flips."""
        p = BlockSizePredictor(index_bits=6)
        key = 42
        assert p.predict_big(key)
        p.train(key, was_big=False)
        assert not p.predict_big(key)  # 2 -> 1: small

    def test_saturation_at_zero(self):
        p = BlockSizePredictor(index_bits=6)
        for _ in range(10):
            p.train(7, was_big=False)
        p.train(7, was_big=True)
        p.train(7, was_big=True)
        assert p.predict_big(7)  # 0 -> 1 -> 2

    def test_saturation_at_three(self):
        p = BlockSizePredictor(index_bits=6)
        for _ in range(10):
            p.train(7, was_big=True)
        p.train(7, was_big=False)
        assert p.predict_big(7)  # saturated at 3 -> 2 still predicts big

    def test_accuracy_tracking(self):
        p = BlockSizePredictor(index_bits=6)
        p.train(1, was_big=True)  # cold counter predicts big: correct
        p.train(1, was_big=False)  # predicts big: wrong
        assert p.accuracy.hits == 1
        assert p.accuracy.misses == 1

    def test_storage_paper_size(self):
        """P=16 -> 2 * 2^16 bits = 16 KB (Section III-B3)."""
        assert BlockSizePredictor(index_bits=16).storage_bits == 128 * 1024

    @given(key=st.integers(min_value=0, max_value=(1 << 40) - 1))
    def test_index_in_range(self, key):
        p = BlockSizePredictor(index_bits=8)
        assert 0 <= p._index(key) < 256

    def test_index_uses_high_bits(self):
        """Keys differing only in high bits map to different entries."""
        p = BlockSizePredictor(index_bits=10)
        indices = {p._index((1 << 20) * i) for i in range(64)}
        # Not degenerate: high-order-only key differences spread widely
        # (a plain low-bits mask would give a single index here).
        assert len(indices) > 16


class TestTracker:
    def test_sampling_decision(self):
        t = UtilizationTracker(BlockSizePredictor(), sample_every=25)
        assert t.is_sampled(0)
        assert t.is_sampled(25)
        assert not t.is_sampled(13)

    def test_unsampled_sets_do_not_train(self):
        p = BlockSizePredictor(index_bits=6)
        t = UtilizationTracker(p, sample_every=25)
        t.observe_eviction(13, block_key=7, utilization=1)
        assert t.observations == 0
        assert p.predict_big(7)

    def test_sampled_evictions_train(self):
        p = BlockSizePredictor(index_bits=6)
        t = UtilizationTracker(p, sample_every=25)
        t.observe_eviction(0, block_key=7, utilization=1)
        t.observe_eviction(25, block_key=7, utilization=2)
        assert t.observations == 2
        assert not p.predict_big(7)

    def test_dense_evictions_keep_big(self):
        p = BlockSizePredictor(index_bits=6)
        t = UtilizationTracker(p, sample_every=1)
        for _ in range(4):
            t.observe_eviction(0, block_key=7, utilization=8)
        assert p.predict_big(7)

    def test_storage_estimate(self):
        t = UtilizationTracker(BlockSizePredictor(), sample_every=25)
        # 256MB cache: 128K sets, 4% sampled, 4 big ways x 1 byte:
        # ~20KB like the paper quotes.
        assert t.storage_bytes(128 * 1024) == pytest.approx(20 * 1024, rel=0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            UtilizationTracker(BlockSizePredictor(), sample_every=0)
