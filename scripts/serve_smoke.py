#!/usr/bin/env python
"""CI smoke: boot `repro serve`, drive it via the typed client, and
assert the server's answer is byte-identical to the CLI path.

The byte-identity contract (docs/service.md): the CLI and the daemon
are both thin adapters over repro.api.facade, so the same GridRequest
must produce identical exported artifacts whichever entry point ran
it. This script:

1. runs `python -m repro run <grid> --export cli.json` (cold CLI path);
2. boots `python -m repro serve` on an ephemeral port as a subprocess;
3. submits the equivalent GridRequest through ServiceClient, exports
   the returned rows with the same exporter, and `cmp`s the two files
   (modulo the manifest-free metadata both paths share);
4. asserts a second identical request hits the server's warm state
   (trace-cache memory hits increase, grid resumes from checkpoint).

Exit 0 on success, 1 with a one-line reason on any mismatch.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro import api  # noqa: E402
from repro.harness.export import export_json  # noqa: E402

EXPERIMENT = "fig10"
MIXES = ("Q1", "Q2")
ACCESSES = 1500


def fail(reason: str) -> None:
    print(f"serve_smoke: FAIL: {reason}", file=sys.stderr)
    raise SystemExit(1)


def canonical_export(path: str) -> dict:
    """Export JSON minus fields legitimately differing between runs."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    doc.get("metadata", {}).pop("generated_unix", None)
    return doc


def connect_when_ready(host: str, port: int, budget_s: float = 20.0):
    """Bounded ping-retry loop instead of trusting the banner's timing.

    The banner prints when the listener binds, but the first connect can
    still race process scheduling; retry with short connect timeouts
    until the server answers a ping or the budget is spent.
    """
    deadline = time.perf_counter() + budget_s
    last_error: Exception | None = None
    while time.perf_counter() < deadline:
        try:
            client = api.ServiceClient(
                host, port, timeout=300, connect_timeout=2.0
            )
        except (OSError, TimeoutError) as exc:
            last_error = exc
            time.sleep(0.1)
            continue
        try:
            client.ping()
            return client
        except Exception as exc:  # noqa: BLE001 — retry until budget
            last_error = exc
            client.close()
            time.sleep(0.1)
    fail(f"server not ready within {budget_s:g}s: {last_error}")


def main() -> int:
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        env["REPRO_TRACE_CACHE_DIR"] = os.path.join(tmp, "traces")
        cli_export = os.path.join(tmp, "cli.json")

        # 1. CLI path (cold process).
        cli_start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", EXPERIMENT,
             "--mixes", *MIXES, "--accesses", str(ACCESSES),
             "--export", cli_export],
            env=env, capture_output=True, text=True,
        )
        cli_wall = time.perf_counter() - cli_start
        if proc.returncode != 0:
            fail(f"CLI run exited {proc.returncode}: {proc.stderr.strip()}")

        # 2. Boot the daemon.
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--state-dir", os.path.join(tmp, "state")],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = server.stdout.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", banner)
            if not match:
                fail(f"no listening banner, got: {banner!r}")
            host, port = match.group(1), int(match.group(2))

            with connect_when_ready(host, port) as client:
                request = api.grid_request(
                    EXPERIMENT, mixes=MIXES, accesses_per_core=ACCESSES
                )
                # 3. Server path, exported through the same exporter.
                result = client.run_grid(request)
                if result.status != "ok":
                    fail(f"server grid status {result.status!r}")
                server_export = os.path.join(tmp, "server.json")
                export_json(
                    list(result.rows), server_export, experiment=EXPERIMENT
                )
                cli_doc = canonical_export(cli_export)
                server_doc = canonical_export(server_export)
                if cli_doc != server_doc:
                    fail("server export differs from CLI export")

                # 4. Warm second request: trace-cache memory hits must
                # grow and the grid must resume fully from checkpoint.
                before = client.stats().trace_cache.get("memory_hits", 0)
                warm_start = time.perf_counter()
                again = client.run_grid(request)
                warm_wall = time.perf_counter() - warm_start
                after = client.stats().trace_cache.get("memory_hits", 0)
                if again.rows != result.rows:
                    fail("warm re-run changed rows")
                if again.resumed_cells <= 0:
                    fail("warm re-run did not resume from checkpoint")
                if after < before:
                    fail(f"trace-cache memory hits fell: {before} -> {after}")
                if warm_wall >= cli_wall:
                    fail(
                        f"warm server request ({warm_wall:.2f}s) not faster "
                        f"than cold CLI run ({cli_wall:.2f}s)"
                    )
            print(
                f"serve_smoke: OK — byte-identical exports; warm request "
                f"{warm_wall:.2f}s vs cold CLI {cli_wall:.2f}s, "
                f"resumed {again.resumed_cells} cell(s)"
            )
        finally:
            server.terminate()
            try:
                rc = server.wait(timeout=15)
                # SIGTERM now triggers a graceful drain; an idle server
                # must exit 0 (the drain contract, docs/robustness.md).
                if rc != 0:
                    fail(f"SIGTERM drain exited {rc}, expected 0")
            except subprocess.TimeoutExpired:
                server.kill()
                fail("server did not drain within 15s of SIGTERM")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
