"""Chaos suite: injected disk faults and a misbehaving network between
client and daemon. The invariants under test (docs/robustness.md):

* responses are never interleaved or cross-contaminated;
* a journaled grid is never lost — torn/corrupt files are quarantined,
  not trusted;
* after any injected failure the system recovers to byte-identical
  results (the facade is the single engine, so "recovered" and
  "recomputed" must be indistinguishable).

Everything here is deterministic: disk chaos is a scripted budget via
``REPRO_CHAOS`` and wire chaos is a scripted :class:`ProxyPlan` — no
dice, no flakes by construction.
"""

import asyncio
import json
import os

import pytest

from repro import api
from repro.api import facade
from repro.api.protocol import request_line
from repro.api.retry import RetryPolicy
from repro.server import ChaosProxy, ProxyPlan, ReproServer, ServerConfig
from repro.server import chaos
from repro.server.state import GridStore, grid_key

pytestmark = pytest.mark.chaos


def run_async(coro):
    return asyncio.run(coro)


async def start_server(**overrides):
    config = ServerConfig(**{"port": 0, "max_inflight": 2, **overrides})
    server = ReproServer(config)
    host, port = await server.start()
    return server, host, port


def sim_request(scheme="alloy", mix="Q1", accesses=900, **kw):
    return facade.sim_request(scheme, mix, accesses_per_core=accesses, **kw)


@pytest.fixture(autouse=True)
def clean_chaos(monkeypatch):
    """Each test arms its own plan; none leaks into the next."""
    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    chaos.reset_chaos()
    yield
    chaos.reset_chaos()


class TestDiskChaos:
    def test_enospc_on_journal_degrades_but_answers_correctly(
        self, tmp_path, monkeypatch
    ):
        """Disk-full on the journal write: the grid still runs and the
        client's answer is correct — only crash recovery is lost, and
        the degradation is counted, not hidden."""
        monkeypatch.setenv(
            chaos.CHAOS_ENV, '{"journal": {"action": "enospc", "times": 1}}'
        )
        chaos.reset_chaos()
        state_dir = str(tmp_path / "state")
        request = facade.grid_request("fig10", mixes=("Q1",), accesses_per_core=700)

        async def scenario():
            server, host, port = await start_server(state_dir=state_dir)
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    result = await client.run_grid(request)
                    stats = await client.stats()
                finally:
                    await client.close()
                return result, stats, server.store.io_errors
            finally:
                await server.aclose()

        result, stats, io_errors = run_async(scenario())
        assert result.status == "ok"
        assert result.rows == facade.run_grid(request).rows
        assert io_errors == 1
        assert stats.server["store_io_errors"] == 1
        assert chaos.chaos_counters() == {"journal": 1}
        # No journal was persisted, so there is nothing to recover.
        assert GridStore(state_dir).incomplete() == []

    def test_torn_result_is_quarantined_and_grid_rerun(self, tmp_path, monkeypatch):
        """A torn result file (crash mid-write) must never be trusted as
        completion: recovery quarantines it and re-runs the journaled
        grid to a byte-identical result."""
        monkeypatch.setenv(
            chaos.CHAOS_ENV, '{"result": {"action": "torn", "times": 1}}'
        )
        chaos.reset_chaos()
        state_dir = str(tmp_path / "state")
        request = facade.grid_request("fig10", mixes=("Q1",), accesses_per_core=700)
        key = grid_key(request)

        async def first_run():
            server, host, port = await start_server(state_dir=state_dir)
            try:
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    return await client.run_grid(request)
                finally:
                    await client.close()
            finally:
                await server.aclose()

        result = run_async(first_run())
        assert result.status == "ok"  # the client was never lied to

        # The torn file exists at the result path but does not parse.
        result_path = os.path.join(state_dir, f"{key}.result.json")
        assert os.path.exists(result_path)
        assert GridStore(state_dir).result(key) is None

        async def recovery_run():
            server, _, _ = await start_server(state_dir=state_dir)
            try:
                loop = asyncio.get_running_loop()
                deadline = loop.time() + 60
                while loop.time() < deadline:
                    if server.store.result(key) is not None:
                        break
                    await asyncio.sleep(0.05)
                else:
                    pytest.fail("recovery never completed the grid")
                return (
                    server.store.quarantined,
                    server.stats.recovered_grids,
                    server.store.result(key),
                )
            finally:
                await server.aclose()

        quarantined, recovered, recovered_result = run_async(recovery_run())
        assert quarantined == 1
        assert recovered == 1
        assert os.path.exists(result_path + ".corrupt")  # kept for forensics
        assert recovered_result.rows == facade.run_grid(request).rows


class TestWireChaos:
    def test_sync_client_reconnects_after_mid_stream_drop(self, tmp_path):
        """The proxy kills the connection after the first progress
        events; a RetryPolicy client reconnects, resubmits, and joins
        or resumes the same grid — byte-identical to a local run."""
        state_dir = str(tmp_path / "state")
        request = facade.grid_request("fig10", mixes=("Q1",), accesses_per_core=1500)

        async def scenario():
            server, host, port = await start_server(state_dir=state_dir)
            proxy = ChaosProxy(
                host, port,
                ProxyPlan(drop_after_bytes=150, only_first_connections=1),
            )
            proxy_host, proxy_port = await proxy.start()
            try:
                def drive():
                    with api.ServiceClient(
                        proxy_host, proxy_port, timeout=120,
                        retry=RetryPolicy(attempts=4, backoff_s=0.01),
                    ) as client:
                        return client.run_grid(request)

                result = await asyncio.to_thread(drive)
                return result, proxy.stats
            finally:
                await proxy.aclose()
                await server.aclose()

        result, stats = run_async(scenario())
        assert stats.dropped == 1
        assert stats.connections >= 2, "client never reconnected"
        local = facade.run_grid(request)
        assert result.rows == local.rows
        assert (
            json.dumps([dict(r) for r in result.rows], sort_keys=True)
            == json.dumps([dict(r) for r in local.rows], sort_keys=True)
        )

    def test_async_client_reconnects_mid_progress_stream(self, tmp_path):
        state_dir = str(tmp_path / "state")
        request = facade.grid_request("fig10", mixes=("Q1",), accesses_per_core=1500)

        async def scenario():
            server, host, port = await start_server(state_dir=state_dir)
            proxy = ChaosProxy(
                host, port,
                ProxyPlan(drop_after_bytes=200, only_first_connections=1),
            )
            proxy_host, proxy_port = await proxy.start()
            try:
                client = await api.AsyncServiceClient.connect(
                    proxy_host, proxy_port,
                    retry=RetryPolicy(attempts=5, backoff_s=0.01),
                )
                try:
                    result = await client.run_grid(request)
                finally:
                    await client.close()
                return result, proxy.stats
            finally:
                await proxy.aclose()
                await server.aclose()

        result, stats = run_async(scenario())
        assert stats.connections >= 2, "client never reconnected"
        assert result.rows == facade.run_grid(request).rows

    def test_half_open_connection_times_out_and_retries(self):
        """A half-open peer (up but silent) must not hang the client
        forever: the read timeout fires, the retry reconnects through
        the healed path and the answer is correct."""
        request = sim_request(accesses=700)

        async def scenario():
            server, host, port = await start_server()
            proxy = ChaosProxy(
                host, port,
                ProxyPlan(half_open_after_bytes=0, only_first_connections=1),
            )
            proxy_host, proxy_port = await proxy.start()
            try:
                def drive():
                    with api.ServiceClient(
                        proxy_host, proxy_port, timeout=1.0,
                        retry=RetryPolicy(attempts=4, backoff_s=0.01),
                    ) as client:
                        return client.run_sim(request)

                result = await asyncio.to_thread(drive)
                return result, proxy.stats.connections
            finally:
                await proxy.aclose()
                await server.aclose()

        result, connections = run_async(scenario())
        assert connections >= 2, "client never abandoned the silent peer"
        assert result.stats == facade.run_sim(request).stats

    def test_garbled_frame_is_a_typed_error_not_a_wrong_answer(self):
        """A flipped byte in the stream must surface as an error — the
        codec refuses the frame rather than deliver corrupt data — and
        a fresh attempt over the healed path succeeds."""
        request = sim_request(accesses=700)

        async def scenario():
            server, host, port = await start_server()
            proxy = ChaosProxy(
                host, port,
                ProxyPlan(garble_at=40, only_first_connections=1),
            )
            proxy_host, proxy_port = await proxy.start()
            try:
                def poisoned():
                    with api.ServiceClient(proxy_host, proxy_port, timeout=60) as c:
                        return c.run_sim(request)

                with pytest.raises(ValueError):  # WireError or decode error
                    await asyncio.to_thread(poisoned)

                def clean():
                    with api.ServiceClient(proxy_host, proxy_port, timeout=60) as c:
                        return c.run_sim(request)

                return await asyncio.to_thread(clean)
            finally:
                await proxy.aclose()
                await server.aclose()

        result = run_async(scenario())
        assert result.stats == facade.run_sim(request).stats

    def test_truncated_request_leaves_server_healthy(self):
        """A request cut off mid-frame is rejected without wedging the
        daemon: the next (direct) client is served normally."""

        async def scenario():
            server, host, port = await start_server()
            proxy = ChaosProxy(host, port, ProxyPlan(truncate_request_at=50))
            proxy_host, proxy_port = await proxy.start()
            try:
                reader, writer = await asyncio.open_connection(
                    proxy_host, proxy_port
                )
                try:
                    writer.write(request_line("trunc", "sim", sim_request()))
                    await writer.drain()
                    await asyncio.wait_for(reader.read(), timeout=10)
                finally:
                    writer.close()
                # Straight to the server, past the proxy: still healthy.
                client = await api.AsyncServiceClient.connect(host, port)
                try:
                    result = await client.run_sim(sim_request(accesses=700))
                    health = await client.health()
                finally:
                    await client.close()
                return result, health
            finally:
                await proxy.aclose()
                await server.aclose()

        result, health = run_async(scenario())
        assert result.records > 0
        assert health.state == "serving"

    def test_slow_loris_and_concurrent_clients_no_cross_contamination(self):
        """Two clients through a trickling proxy (bytes arrive one at a
        time): each still gets exactly its own answer."""
        specs = [("alloy", "Q1"), ("bimodal", "Q2")]

        async def scenario():
            server, host, port = await start_server()
            proxy = ChaosProxy(host, port, ProxyPlan(trickle=True))
            proxy_host, proxy_port = await proxy.start()
            try:
                clients = [
                    await api.AsyncServiceClient.connect(proxy_host, proxy_port)
                    for _ in specs
                ]
                try:
                    results = await asyncio.gather(*[
                        client.run_sim(sim_request(scheme, mix, accesses=700))
                        for client, (scheme, mix) in zip(clients, specs)
                    ])
                finally:
                    for client in clients:
                        await client.close()
                return results
            finally:
                await proxy.aclose()
                await server.aclose()

        results = run_async(scenario())
        for result, (scheme, mix) in zip(results, specs):
            assert result.scheme == scheme
            assert result.mix == mix
            local = facade.run_sim(sim_request(scheme, mix, accesses=700))
            assert result.stats == local.stats
