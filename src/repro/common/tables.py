"""Fixed tables the paper consumes from external tools.

Two pieces of the paper's methodology come from tools that are not part of
the simulated system itself:

* **CACTI 6.5 @22nm SRAM latencies** — Table III (way locator) and the
  tag-store latencies quoted in Section III-C2 for tags-in-SRAM schemes
  (6 cycles for 1 MB, 7 for 2 MB, 9 for 4 MB). We encode the published
  numbers directly plus a monotone size->cycles rule for in-between sizes.
* **DDR3-1600H / stacked DRAM timing** — Table IV's CL-nRCD-nRP = 9-9-9,
  burst lengths and clocks, converted to 3.2 GHz CPU cycles.
"""

from __future__ import annotations


__all__ = [
    "CPU_FREQ_HZ",
    "sram_latency_cycles",
    "way_locator_entry_bits",
    "way_locator_storage_bytes",
    "PAPER_TABLE3_STORAGE_KB",
    "PAPER_TABLE3_LATENCY_CYCLES",
    "TAG_STORE_LATENCY",
]

CPU_FREQ_HZ = 3.2e9

# Section III-C2: CACTI 22nm latencies for large SRAM tag stores used by
# tags-in-SRAM organizations (Footprint Cache).
TAG_STORE_LATENCY = {
    1 << 20: 6,  # 1 MB -> 6 cycles
    2 << 20: 7,  # 2 MB -> 7 cycles
    4 << 20: 9,  # 4 MB -> 9 cycles
}

# CACTI-style size -> access latency staircase (CPU cycles @3.2GHz, 22nm).
# Anchored on the paper's published points: way locator tables up to
# ~86 KB are 1 cycle, ~280-312 KB are 2 cycles (Table III); 1/2/4 MB tag
# stores are 6/7/9 cycles (Sec. III-C2).
_SRAM_LATENCY_STAIRCASE = (
    (128 * 1024, 1),
    (512 * 1024, 2),
    (768 * 1024, 4),
    (1 * 1024 * 1024, 6),
    (2 * 1024 * 1024, 7),
    (4 * 1024 * 1024, 9),
    (8 * 1024 * 1024, 11),
)


def sram_latency_cycles(size_bytes: int) -> int:
    """CPU-cycle access latency of an SRAM structure of ``size_bytes``.

    Monotone staircase through the paper's published CACTI points.
    """
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    for limit, cycles in _SRAM_LATENCY_STAIRCASE:
        if size_bytes <= limit:
            return cycles
    return 13


def way_locator_entry_bits(
    address_bits: int,
    set_index_bits: int,
    offset_bits: int,
    locator_index_bits: int,
    max_ways: int = 18,
) -> int:
    """Bits per way locator entry (Figure 6).

    valid (1) + big/small size bit (1) + remaining set+tag bits after the
    K index bits + 3 leading offset bits + way identification number.
    """
    tag_bits = address_bits - set_index_bits - offset_bits
    remaining = set_index_bits + tag_bits - locator_index_bits
    if remaining < 0:
        raise ValueError("locator index wider than available set+tag bits")
    way_id_bits = max(1, (max_ways - 1).bit_length())
    small_offset_bits = offset_bits - 6  # 3 for a 512B big block
    return 1 + 1 + remaining + small_offset_bits + way_id_bits


def way_locator_storage_bytes(
    address_bits: int,
    set_index_bits: int,
    offset_bits: int,
    locator_index_bits: int,
    max_ways: int = 18,
) -> float:
    """Total way locator storage (2-way table => 2 * 2**K entries)."""
    entries = 2 * (1 << locator_index_bits)
    bits = way_locator_entry_bits(
        address_bits, set_index_bits, offset_bits, locator_index_bits, max_ways
    )
    return entries * bits / 8.0


# Table III as published: {K: {(cache_MB, mem_GB): (storage_KB, cycles)}}
PAPER_TABLE3_STORAGE_KB = {
    10: {(128, 4): 5.9, (256, 8): 6.14, (512, 16): 6.4},
    12: {(128, 4): 21.5, (256, 8): 22.5, (512, 16): 23.5},
    14: {(128, 4): 77.8, (256, 8): 81.9, (512, 16): 86.0},
    16: {(128, 4): 278.5, (256, 8): 294.9, (512, 16): 311.3},
}

PAPER_TABLE3_LATENCY_CYCLES = {10: 1, 12: 1, 14: 1, 16: 2}
