"""Batched drive fast path: bit-identical to the per-record loop."""

import pytest

from repro.harness.perfbench import measure_drive_throughput
from repro.harness.runner import ExperimentSetup, build_cache, drive_cache
from repro.workloads.generator import TraceChunk

SETUP = ExperimentSetup(num_cores=4, accesses_per_core=2_000)
TOTAL = SETUP.num_cores * SETUP.accesses_per_core


def _legacy_records(mix):
    trace = SETUP.trace(mix)
    return ((r.address, r.is_write, r.icount) for r in trace)


@pytest.mark.parametrize("scheme", ["bimodal", "alloy", "fixed512"])
def test_fast_path_identical_to_legacy(scheme):
    legacy_cache = build_cache(scheme, SETUP.system)
    legacy = drive_cache(
        legacy_cache, _legacy_records("Q1"), window=16, streams=4, warmup=TOTAL // 2
    )
    fast_cache = build_cache(scheme, SETUP.system)
    fast = drive_cache(
        fast_cache,
        SETUP.trace_records("Q1"),
        window=16,
        streams=4,
        warmup=TOTAL // 2,
    )
    assert fast.stats == legacy.stats
    assert fast.end_time == legacy.end_time
    assert fast.accesses == legacy.accesses == TOTAL


def test_fast_path_accepts_multiprogram_trace():
    """A MultiProgramTrace object routes through the batched path."""
    trace = SETUP.trace("Q2")
    via_trace = drive_cache(
        build_cache("bimodal", SETUP.system), trace, window=16, streams=4
    )
    via_chunk = drive_cache(
        build_cache("bimodal", SETUP.system),
        SETUP.trace_records("Q2"),
        window=16,
        streams=4,
    )
    assert via_trace.stats == via_chunk.stats


def test_warmup_boundary_matches_legacy():
    """reset_stats must fire at the same record index in both paths."""
    for warmup in (1, 7, TOTAL // 3, TOTAL - 1):
        legacy = drive_cache(
            build_cache("bimodal", SETUP.system),
            _legacy_records("Q1"),
            window=16,
            streams=4,
            warmup=warmup,
        )
        fast = drive_cache(
            build_cache("bimodal", SETUP.system),
            SETUP.trace_records("Q1"),
            window=16,
            streams=4,
            warmup=warmup,
        )
        assert fast.stats == legacy.stats, f"warmup={warmup}"


def test_merged_chunks_cover_trace():
    trace = SETUP.trace("Q1")
    chunks = list(trace.merged_chunks(chunk_size=1_000))
    assert all(isinstance(c, TraceChunk) for c in chunks)
    assert sum(len(c) for c in chunks) == TOTAL
    merged = trace.materialize()
    flat = [a for c in chunks for a in c.addresses.tolist()]
    assert flat == merged.addresses.tolist()


def test_perfbench_smoke():
    """Throughput measurement runs and both modes agree (no timing asserts:
    wall-clock ratios are checked offline, not in tier-1)."""
    setup = ExperimentSetup(num_cores=4, accesses_per_core=1_000)
    legacy = measure_drive_throughput(setup=setup, mode="legacy", repeats=1)
    fast = measure_drive_throughput(setup=setup, mode="fast", repeats=1)
    assert legacy.records == fast.records == 4_000
    assert legacy.stats == fast.stats
    assert legacy.records_per_second > 0
    assert fast.records_per_second > 0
