"""Cache-level Table II behaviour: per-set alignment to the global state."""


from repro.bimodal.cache import BiModalCache, BiModalConfig
from repro.common.config import DRAMCacheGeometry, DRAMGeometry, DRAMTimingConfig
from repro.dram.controller import MemoryController


def make_cache(**overrides) -> BiModalCache:
    geometry = DRAMCacheGeometry(
        capacity=1 << 20,
        geometry=DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048),
    )
    offchip = MemoryController(
        DRAMGeometry(channels=1, banks_per_channel=16, page_size=2048),
        DRAMTimingConfig.ddr3_1600h(),
    )
    defaults = dict(
        locator_index_bits=8,
        predictor_index_bits=8,
        tracker_sample_every=1,
        adaptation_interval=100_000,  # effectively frozen for these tests
        address_bits=36,
    )
    defaults.update(overrides)
    return BiModalCache(geometry, offchip, BiModalConfig(**defaults))


def force_small_prediction(cache: BiModalCache) -> None:
    """Saturate every predictor entry toward 'small'."""
    for idx in range(len(cache.predictor._counters)):
        cache.predictor._counters[idx] = 0


def force_big_prediction(cache: BiModalCache) -> None:
    for idx in range(len(cache.predictor._counters)):
        cache.predictor._counters[idx] = 3


class TestAlignedState:
    def test_aligned_big_prediction_replaces_big(self):
        cache = make_cache()
        am = cache.addr_map
        t = 0
        for tag in range(5):  # 5 big fills into a 4-way set
            r = cache.access(am.rebuild(tag, 7, 0), t)
            t = r.complete + 10
        entry = cache._sets[7]
        assert entry.state == (4, 0)
        resident = sum(1 for b in entry.big_ways if b is not None)
        assert resident == 4

    def test_aligned_small_prediction_at_4_0_overridden_to_big(self):
        """Table II has no small slot at (4,0)/(4,0): the fill proceeds
        big and the override is counted."""
        cache = make_cache()
        force_small_prediction(cache)
        cache.access(0x40000, 0)
        assert cache.small_pred_overridden.value == 1
        assert cache.big_fills.value == 1
        assert cache._sets[cache.addr_map.set_index(0x40000)].state == (4, 0)


class TestMisalignedStates:
    def test_small_prediction_converts_set_toward_global(self):
        """Set at (4,0), global at (3,8), predicted small: grow_small
        fires (Table II row: Xs > Xglob, predict small)."""
        cache = make_cache()
        force_small_prediction(cache)
        cache.global_ctrl.force_state(1)  # (3, 8)
        cache.access(0x40000, 0)
        entry = cache._sets[cache.addr_map.set_index(0x40000)]
        assert entry.state == (3, 8)
        assert cache.small_fills.value == 1
        assert cache.set_state_transitions.value == 1

    def test_big_prediction_on_smaller_set_grows_big(self):
        """Set at (3,8), global back at (4,0), predicted big: grow_big
        evicts the 8 small ways (Table II row: Xs < Xglob, predict big)."""
        cache = make_cache()
        am = cache.addr_map
        force_small_prediction(cache)
        cache.global_ctrl.force_state(1)
        t = 0
        r = cache.access(am.rebuild(1, 9, 0), t)  # converts set 9 to (3,8)
        t = r.complete + 10
        entry = cache._sets[9]
        assert entry.state == (3, 8)
        # now demand flips big and global returns to all-big
        force_big_prediction(cache)
        cache.global_ctrl.force_state(0)
        r = cache.access(am.rebuild(2, 9, 0), t)
        assert entry.state == (4, 0)
        assert entry.find_big(2) is not None

    def test_big_prediction_on_smaller_set_without_global_change(self):
        """Set at (3,8) aligned with global (3,8): a big prediction
        replaces a big block without changing the state."""
        cache = make_cache()
        am = cache.addr_map
        force_small_prediction(cache)
        cache.global_ctrl.force_state(1)
        t = 0
        r = cache.access(am.rebuild(1, 9, 0), t)
        t = r.complete + 10
        force_big_prediction(cache)
        for tag in range(2, 7):
            r = cache.access(am.rebuild(tag, 9, 0), t)
            t = r.complete + 10
        entry = cache._sets[9]
        assert entry.state == (3, 8)
        assert sum(1 for b in entry.big_ways if b is not None) == 3

    def test_small_fill_lands_in_small_way_and_serves_64b(self):
        cache = make_cache()
        am = cache.addr_map
        force_small_prediction(cache)
        cache.global_ctrl.force_state(2)  # (2, 16)
        # Per-set alignment moves one Table II step per miss: two small
        # misses take the set (4,0) -> (3,8) -> (2,16).
        addr = am.rebuild(5, 11, 3)
        fetched_before = cache.offchip_fetched_bytes
        r = cache.access(addr, 0)
        assert cache.offchip_fetched_bytes - fetched_before == 64
        entry = cache._sets[11]
        assert entry.state == (3, 8)
        r2 = cache.access(am.rebuild(6, 11, 1), r.complete + 10)
        assert entry.state == (2, 16)
        assert entry.find_small(5, 3) is not None
        # only the fetched sub-block hits; its neighbours miss
        assert cache.access(addr, r2.complete + 10).hit
        assert not cache.resident(am.rebuild(5, 11, 4))


class TestDirtySmallBlocks:
    def test_small_block_dirty_writeback(self):
        cache = make_cache()
        am = cache.addr_map
        force_small_prediction(cache)
        cache.global_ctrl.force_state(2)
        t = 0
        r = cache.access(am.rebuild(1, 13, 2), t, is_write=True)
        t = r.complete + 10
        # Evict it via a flood of small fills to the same set (random
        # replacement, deterministic under the fixed seed).
        for tag in range(2, 80):
            r = cache.access(am.rebuild(tag, 13, 2), t)
            t = r.complete + 10
        cache.flush_posted()
        assert not cache.resident(am.rebuild(1, 13, 2))
        assert cache.offchip_writeback_bytes >= 64
