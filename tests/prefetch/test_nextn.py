"""Next-N-lines prefetcher tests."""

import pytest

from repro.common.config import DRAMCacheGeometry, DRAMGeometry, DRAMTimingConfig
from repro.dram.controller import MemoryController
from repro.dramcache.alloy import AlloyCache
from repro.prefetch.nextn import PREF_BYPASS, PREF_NORMAL, NextNPrefetcher


def make_alloy():
    geometry = DRAMCacheGeometry(
        capacity=1 << 20,
        geometry=DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048),
    )
    offchip = MemoryController(
        DRAMGeometry(channels=1, banks_per_channel=16, page_size=2048),
        DRAMTimingConfig.ddr3_1600h(),
    )
    return AlloyCache(geometry, offchip)


class TestIssue:
    def test_degree_prefetches_issued(self):
        pf = NextNPrefetcher(make_alloy(), degree=3, mode=PREF_NORMAL)
        pf.access(0x4000, 0)
        assert pf.prefetches_issued == 3

    def test_prefetched_lines_become_hits(self):
        pf = NextNPrefetcher(make_alloy(), degree=1, mode=PREF_NORMAL)
        pf.access(0x4000, 0)
        r = pf.access(0x4040, 100_000)
        assert r.hit

    def test_degree_zero_is_passthrough(self):
        pf = NextNPrefetcher(make_alloy(), degree=0)
        pf.access(0x4000, 0)
        assert pf.prefetches_issued == 0

    def test_writes_do_not_trigger_prefetch(self):
        pf = NextNPrefetcher(make_alloy(), degree=2)
        pf.access(0x4000, 0, is_write=True)
        assert pf.prefetches_issued == 0

    def test_filter_suppresses_duplicates(self):
        pf = NextNPrefetcher(make_alloy(), degree=1)
        pf.access(0x4000, 0)
        pf.access(0x4000, 1000)
        assert pf.prefetches_issued == 1
        assert pf.prefetches_filtered >= 1

    def test_demand_access_filters_future_prefetch(self):
        pf = NextNPrefetcher(make_alloy(), degree=1)
        pf.access(0x4040, 0)  # demand on the line...
        pf.access(0x4000, 1000)  # ...that would now be prefetched
        assert pf.prefetches_filtered >= 1


class TestBypass:
    def test_bypass_does_not_allocate(self):
        pf = NextNPrefetcher(make_alloy(), degree=1, mode=PREF_BYPASS)
        pf.access(0x4000, 0)
        assert pf.bypassed_prefetches == 1
        assert not pf.cache.resident(0x4040)

    def test_bypass_still_fetches_offchip(self):
        pf = NextNPrefetcher(make_alloy(), degree=1, mode=PREF_BYPASS)
        before = pf.cache.offchip_fetched_bytes
        pf.access(0x4000, 0)
        assert pf.cache.offchip_fetched_bytes > before

    def test_bypass_resident_line_goes_through_cache(self):
        pf = NextNPrefetcher(make_alloy(), degree=1, mode=PREF_BYPASS)
        pf.cache.access(0x4040, 0)  # pre-install next line
        pf.access(0x4000, 1000)
        assert pf.bypassed_prefetches == 0

    def test_normal_mode_allocates(self):
        pf = NextNPrefetcher(make_alloy(), degree=1, mode=PREF_NORMAL)
        pf.access(0x4000, 0)
        assert pf.cache.resident(0x4040)


class TestValidation:
    def test_bad_degree(self):
        with pytest.raises(ValueError):
            NextNPrefetcher(make_alloy(), degree=-1)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            NextNPrefetcher(make_alloy(), mode="aggressive")
