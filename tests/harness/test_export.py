"""Result export tests."""

import pytest

from repro.harness.export import export_csv, export_json, load_json

ROWS = [
    {"mix": "Q1", "hit_rate": 0.91, "state": (3, 8)},
    {"mix": "Q2", "hit_rate": 0.95, "state": (4, 0)},
]


class TestJSON:
    def test_roundtrip(self, tmp_path):
        path = export_json(
            ROWS,
            tmp_path / "out" / "fig8b.json",
            experiment="fig8b",
            metadata={"cores": 4, "scale": 16},
        )
        doc = load_json(path)
        assert doc["experiment"] == "fig8b"
        assert doc["metadata"]["cores"] == 4
        assert doc["rows"][0]["mix"] == "Q1"
        assert doc["rows"][0]["hit_rate"] == 0.91
        # non-scalar values are stringified
        assert doc["rows"][0]["state"] == "(3, 8)"

    def test_version_recorded(self, tmp_path):
        doc = load_json(export_json(ROWS, tmp_path / "x.json"))
        assert doc["repro_version"]


class TestCSV:
    def test_writes_header_and_rows(self, tmp_path):
        path = export_csv(ROWS, tmp_path / "fig.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "mix,hit_rate,state"
        assert lines[1].startswith("Q1,0.91")
        assert len(lines) == 3

    def test_column_selection(self, tmp_path):
        path = export_csv(ROWS, tmp_path / "f.csv", columns=["hit_rate", "mix"])
        assert path.read_text().splitlines()[0] == "hit_rate,mix"

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_csv([], tmp_path / "f.csv")
