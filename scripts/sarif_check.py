#!/usr/bin/env python3
"""Structural SARIF 2.1.0 validator (stdlib only) — the CI gate.

The container has no network and no ``jsonschema`` package, so this
checks the SARIF 2.1.0 constraints that matter for GitHub code
scanning ingestion, hand-translated from the published schema:

* document: ``version == "2.1.0"``, non-empty ``runs`` array;
* run: ``tool.driver.name``, rule descriptors with unique string ids
  and ``shortDescription.text``;
* result: ``message.text`` present; ``ruleId`` resolvable in the
  driver catalog; ``ruleIndex`` (when present) pointing at that same
  rule; ``level`` drawn from the spec's enum; every location carrying
  ``physicalLocation.artifactLocation.uri`` (relative, no scheme) and
  a region with 1-based ``startLine``/``startColumn``.

Exit 0 when the file passes, 1 with one ``path: problem`` line per
violation otherwise. Usage: ``python scripts/sarif_check.py FILE``.
"""

from __future__ import annotations

import json
import sys

_LEVELS = {"none", "note", "warning", "error"}


def _check(condition: bool, errors: list[str], where: str, problem: str) -> bool:
    if not condition:
        errors.append(f"{where}: {problem}")
    return condition


def validate(document: object) -> list[str]:
    errors: list[str] = []
    if not _check(isinstance(document, dict), errors, "$", "must be an object"):
        return errors
    _check(
        document.get("version") == "2.1.0", errors, "$.version",
        f"must be '2.1.0', got {document.get('version')!r}",
    )
    runs = document.get("runs")
    if not _check(
        isinstance(runs, list) and runs, errors, "$.runs",
        "must be a non-empty array",
    ):
        return errors
    for i, run in enumerate(runs):
        errors.extend(_validate_run(run, f"$.runs[{i}]"))
    return errors


def _validate_run(run: object, where: str) -> list[str]:
    errors: list[str] = []
    if not _check(isinstance(run, dict), errors, where, "must be an object"):
        return errors
    driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
    if not _check(
        isinstance(driver, dict), errors, f"{where}.tool.driver",
        "must be an object",
    ):
        return errors
    _check(
        isinstance(driver.get("name"), str) and driver["name"], errors,
        f"{where}.tool.driver.name", "must be a non-empty string",
    )
    rule_ids: list[str] = []
    for j, rule in enumerate(driver.get("rules", [])):
        rwhere = f"{where}.tool.driver.rules[{j}]"
        if not _check(isinstance(rule, dict), errors, rwhere, "must be an object"):
            continue
        rule_id = rule.get("id")
        if _check(
            isinstance(rule_id, str) and rule_id, errors, f"{rwhere}.id",
            "must be a non-empty string",
        ):
            _check(
                rule_id not in rule_ids, errors, f"{rwhere}.id",
                f"duplicate rule id {rule_id!r}",
            )
            rule_ids.append(rule_id)
        short = rule.get("shortDescription")
        _check(
            isinstance(short, dict) and isinstance(short.get("text"), str),
            errors, f"{rwhere}.shortDescription", "must carry .text",
        )
    results = run.get("results", [])
    if not _check(
        isinstance(results, list), errors, f"{where}.results", "must be an array"
    ):
        return errors
    for k, result in enumerate(results):
        errors.extend(_validate_result(result, f"{where}.results[{k}]", rule_ids))
    return errors


def _validate_result(result: object, where: str, rule_ids: list[str]) -> list[str]:
    errors: list[str] = []
    if not _check(isinstance(result, dict), errors, where, "must be an object"):
        return errors
    message = result.get("message")
    _check(
        isinstance(message, dict) and isinstance(message.get("text"), str),
        errors, f"{where}.message", "must carry .text",
    )
    level = result.get("level")
    if level is not None:
        _check(
            level in _LEVELS, errors, f"{where}.level",
            f"must be one of {sorted(_LEVELS)}, got {level!r}",
        )
    rule_id = result.get("ruleId")
    if rule_id is not None and rule_ids:
        _check(
            rule_id in rule_ids, errors, f"{where}.ruleId",
            f"{rule_id!r} not in the driver rule catalog",
        )
    rule_index = result.get("ruleIndex")
    if rule_index is not None:
        ok = (
            isinstance(rule_index, int)
            and 0 <= rule_index < len(rule_ids)
        )
        _check(ok, errors, f"{where}.ruleIndex", "out of catalog range")
        if ok and rule_id is not None:
            _check(
                rule_ids[rule_index] == rule_id, errors,
                f"{where}.ruleIndex", "does not point at .ruleId",
            )
    for m, location in enumerate(result.get("locations", [])):
        lwhere = f"{where}.locations[{m}]"
        physical = location.get("physicalLocation") if isinstance(location, dict) else None
        if not _check(
            isinstance(physical, dict), errors, lwhere,
            "must carry physicalLocation",
        ):
            continue
        artifact = physical.get("artifactLocation")
        if _check(
            isinstance(artifact, dict) and isinstance(artifact.get("uri"), str)
            and artifact["uri"], errors, f"{lwhere}.artifactLocation",
            "must carry a non-empty .uri",
        ):
            _check(
                "://" not in artifact["uri"] and not artifact["uri"].startswith("/"),
                errors, f"{lwhere}.artifactLocation.uri",
                "must be repo-relative for code scanning",
            )
        region = physical.get("region")
        if isinstance(region, dict):
            for key in ("startLine", "startColumn"):
                value = region.get(key)
                if value is not None:
                    _check(
                        isinstance(value, int) and value >= 1, errors,
                        f"{lwhere}.region.{key}", "must be an int >= 1",
                    )
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: python scripts/sarif_check.py FILE.sarif", file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as fh:
            document = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"{argv[1]}: unreadable or not JSON: {exc}", file=sys.stderr)
        return 1
    errors = validate(document)
    for problem in errors:
        print(problem, file=sys.stderr)
    if not errors:
        runs = document.get("runs", [])
        results = sum(len(r.get("results", [])) for r in runs if isinstance(r, dict))
        print(f"{argv[1]}: valid SARIF 2.1.0 ({results} result(s))")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
