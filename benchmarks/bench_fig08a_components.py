"""Figure 8(a): component analysis — Bi-Modal-Only and Way-Locator-Only.

Paper: both components independently deliver ANTT gains over AlloyCache
on 8-core workloads, and the full design captures both.
"""

from repro.harness.experiments import fig8a_component_analysis
from repro.harness.runner import ExperimentSetup

COMPONENT_MIXES = ["E1", "E4"]


def test_fig8a_components(benchmark, report):
    setup = ExperimentSetup(
        num_cores=8, scale=32, accesses_per_core=12_000, seed=1
    )
    rows = benchmark.pedantic(
        lambda: fig8a_component_analysis(setup=setup, mix_names=COMPONENT_MIXES),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Figure 8a: ANTT gain over Alloy by component (8-core)")
    mean = rows[-1]
    assert mean["mix"] == "mean"
    # The full design delivers a positive gain and is never worse than
    # the way-locator component alone. (Bi-Modal-Only — tags in DRAM on
    # every access, no locator — is heavily penalized by our in-order
    # bank service; see EXPERIMENTS.md for the known deviation.)
    assert mean["bimodal_pct"] > 0.0
    assert mean["bimodal_pct"] >= mean["wayloc-only_pct"] - 3.0
