"""The scalar backend: a named alias of the reference drive path.

The per-record kernel in :mod:`repro.harness.runner` *is* the semantic
definition of the drive loop; this module only gives it an addressable
spot in the backend registry so ``--backend scalar`` and the default
path are literally the same code. It must not import numpy.
"""

from __future__ import annotations

__all__ = ["drive"]


def drive(cache, records, kwargs: dict):
    """Drive ``records`` through the reference scalar path."""
    from repro.harness import runner

    return runner._dispatch_drive(cache, records, kwargs)
