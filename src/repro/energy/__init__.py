"""Memory-system energy model."""

from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParams

__all__ = ["EnergyBreakdown", "EnergyModel", "EnergyParams"]
