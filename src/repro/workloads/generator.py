"""Region-based synthetic access-stream generator.

Turns a :class:`~repro.workloads.profile.ProgramProfile` into a
reproducible stream of (address, is_write, instruction-gap) records at the
level the DRAM cache observes (post-LLSC), mirroring the paper's
trace-driven methodology.

Model
-----
The program's footprint is a pool of 512-byte *regions* (big-block sized).
Each region is born with a fixed spatial-utilization mask: ``k`` sub-blocks
(sampled from the profile's utilization distribution) laid out as a
contiguous run at a per-region offset — the set of sub-blocks the program
*ever* touches in that region. Region popularity follows a power law over
a pseudo-randomly permuted rank order (so hot regions are scattered across
the address space, not clustered), giving Zipf-like temporal reuse.

Popularity is assigned at *cluster* granularity (8 contiguous regions =
4 KB), with the visited region drawn uniformly inside the hot cluster:
real data structures are contiguous, so spatial locality extends beyond
one 512 B block — which is what makes 1-4 KB cache blocks (Figure 1) and
2 KB footprint pages behave realistically.

A *visit* picks a region by popularity and touches a geometric-length
burst of its used sub-blocks in order. This yields, by construction:

* Figure 2-style utilization distributions (a region never uses more than
  its mask),
* block-size-sensitive miss rates (dense regions turn 8 small-block
  misses into 1 big-block miss; sparse regions do not),
* MRU-concentrated set access patterns (power-law reuse), and
* realistic row-buffer behaviour (bursts are sequential within a region).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from repro.workloads.profile import ProgramProfile

__all__ = ["TraceChunk", "ProgramTrace"]

_REGION_BYTES = 512
_SUB_BLOCKS = 8
_CLUSTER_REGIONS = 8  # popularity granularity: 8 regions = 4 KB
_SUPER_CLUSTERS = 16  # permutation granularity: 16 clusters = 64 KB
_PERMUTE_PRIME = 2_654_435_761  # Knuth multiplicative-hash constant


@dataclass(frozen=True)
class TraceChunk:
    """A batch of accesses as parallel numpy arrays."""

    addresses: np.ndarray  # uint64, byte addresses (64B-aligned)
    is_write: np.ndarray  # bool
    icount: np.ndarray  # uint32, instructions since the previous access

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[tuple[int, bool, int]]:
        return zip(
            self.addresses.tolist(),
            self.is_write.tolist(),
            self.icount.tolist(),
        )

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy SoA view: the (addresses, is_write, icount) arrays.

        The arrays are the chunk's own (often the shared, read-only
        trace-cache buffers) — slice freely, copy before mutating.
        """
        return self.addresses, self.is_write, self.icount


class ProgramTrace:
    """Reproducible access stream for one program instance.

    The generated records are the accesses the **DRAM cache** observes:
    the raw program stream is filtered through a private LLSC-share
    model (an LRU cache of ``llsc_filter_blocks`` 64 B blocks), so only
    LLSC misses and dirty-victim writebacks are emitted. This is what
    "the DRAM cache sits behind a cache-coherent shared LLSC" means for
    the trace: short-term same-block reuse is absorbed upstream, while
    spatial structure and medium/long-distance reuse pass through.

    Parameters
    ----------
    profile:
        The statistical program description.
    seed:
        Master seed; combined with the profile's ``seed_salt``.
    base_address:
        Start of this instance's private address range (multiprogrammed
        workloads give each core a disjoint range).
    llsc_filter_blocks:
        Capacity, in 64 B blocks, of the program's LLSC share used for
        filtering. 1024 blocks = 64 KB matches one core's slice of the
        scaled Table IV LLSC (4 MB / 4 cores / 16 capacity scale).
        0 disables filtering (raw program stream).
    """

    def __init__(
        self,
        profile: ProgramProfile,
        *,
        seed: int = 1,
        base_address: int = 0,
        llsc_filter_blocks: int = 1024,
    ) -> None:
        self.profile = profile
        self.base_address = base_address
        self._rng = np.random.default_rng(
            np.random.SeedSequence([seed, profile.seed_salt, 0xB1_0DA1])
        )
        self.num_regions = max(16, int(profile.footprint_mb * (1 << 20) / _REGION_BYTES))
        # Round up to whole super-clusters so the permutation and the
        # cluster->region math stay exact.
        self.num_clusters = -(-self.num_regions // _CLUSTER_REGIONS)
        self.num_clusters = (
            -(-self.num_clusters // _SUPER_CLUSTERS) * _SUPER_CLUSTERS
        )
        self.num_regions = self.num_clusters * _CLUSTER_REGIONS
        self._region_util = self._sample_region_utilizations()
        self._region_offset = self._rng.integers(
            0, _SUB_BLOCKS, size=self.num_regions, dtype=np.uint8
        )
        self._rank_cdf = self._build_rank_cdf(profile.reuse_alpha)
        self._recent_regions: list[int] = []
        # Sticky per-region visit point: consecutive visits of a region
        # touch the same sub-block run and only occasionally rotate to
        # another part of the mask. Low-utilization regions therefore
        # see *temporal* reuse of one 64 B block punctuated by rare
        # migrations — the pointer-chasing pattern that makes small
        # cache blocks viable — while dense regions still sweep their
        # whole mask through their long bursts.
        self._region_hot = self._rng.integers(
            0, _SUB_BLOCKS, size=self.num_regions, dtype=np.uint8
        )
        # Per-cluster streaming pointer: visits walk a cluster's regions
        # in order (uint8 wrap-around is harmless modulo 8).
        self._cluster_next = self._rng.integers(
            0, _CLUSTER_REGIONS, size=self.num_clusters, dtype=np.uint8
        )
        # LLSC-share filter state: LRU over 64B block numbers with dirty
        # bits, persistent across chunks.
        self.llsc_filter_blocks = llsc_filter_blocks
        self._filter: "OrderedDict[int, bool]" = OrderedDict()

    # ------------------------------------------------------------------
    def _sample_region_utilizations(self) -> np.ndarray:
        """Per-region spatial utilization, correlated within clusters.

        Utilization is a property of the *data structure* a region
        belongs to (an array is dense everywhere, a linked-list heap is
        sparse everywhere), so the level is drawn once per 4 KB cluster
        and inherited by its regions — which is what makes block-size
        prediction learnable, exactly as in real programs.
        """
        levels = np.array(sorted(self.profile.utilization_dist), dtype=np.uint8)
        probs = np.array(
            [self.profile.utilization_dist[int(k)] for k in levels], dtype=np.float64
        )
        probs = probs / probs.sum()
        per_cluster = self._rng.choice(levels, size=self.num_clusters, p=probs)
        return np.repeat(per_cluster, _CLUSTER_REGIONS)

    def _build_rank_cdf(self, alpha: float) -> np.ndarray:
        """Power-law popularity over *clusters* (4 KB spans)."""
        ranks = np.arange(1, self.num_clusters + 1, dtype=np.float64)
        weights = ranks ** (-alpha)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        return cdf

    def _ranks_to_regions(self, ranks: np.ndarray) -> np.ndarray:
        """Scatter cluster ranks across the address space, pick a member.

        Clusters (not individual regions) are permuted, so the 8 regions
        of a hot cluster stay adjacent — preserving >512 B spatial
        locality while decorrelating popularity from address order.
        Successive visits to a cluster walk its regions sequentially
        (streaming within the structure), which is what lets 1-4 KB
        cache blocks keep amortizing misses (Figure 1).
        """
        # Permute at super-cluster (64 KB) granularity: ranks of similar
        # popularity stay spatially adjacent within a 64 KB span, the way
        # a real program's hot structures are contiguous over many KB,
        # while span placement is still decorrelated from rank order.
        num_super = self.num_clusters // _SUPER_CLUSTERS
        super_rank = ranks.astype(np.uint64) // _SUPER_CLUSTERS
        within = ranks.astype(np.uint64) % _SUPER_CLUSTERS
        clusters = (
            (super_rank * _PERMUTE_PRIME) % np.uint64(num_super)
        ) * np.uint64(_SUPER_CLUSTERS) + within
        idx = clusters.astype(np.int64)
        intra = self._cluster_next[idx].astype(np.uint64)
        np.add.at(self._cluster_next, idx, 1)
        return clusters * np.uint64(_CLUSTER_REGIONS) + (
            intra % np.uint64(_CLUSTER_REGIONS)
        )

    # ------------------------------------------------------------------
    def chunks(self, num_accesses: int, *, chunk_size: int = 1 << 16) -> Iterator[TraceChunk]:
        """Yield ~``num_accesses`` post-LLSC records in chunks."""
        if num_accesses < 1:
            raise ValueError("num_accesses must be >= 1")
        remaining = num_accesses
        while remaining > 0:
            raw = self._generate_chunk(min(chunk_size, remaining))
            chunk = self._llsc_filter(raw, cap=remaining)
            if len(chunk) == 0:
                continue
            remaining -= len(chunk)
            yield chunk

    def _llsc_filter(self, raw: TraceChunk, *, cap: int) -> TraceChunk:
        """Filter a raw chunk through the private LLSC share.

        Emits LLSC misses (reads, or writes that miss — modeled as a
        read-for-ownership fetch) and dirty-victim writebacks. The
        instruction gaps of absorbed records accumulate onto the next
        emitted one, preserving the instruction clock.
        """
        if not self.llsc_filter_blocks:
            return raw
        capacity = self.llsc_filter_blocks
        cache = self._filter
        out_addr: list[int] = []
        out_write: list[bool] = []
        out_icount: list[int] = []
        pending_gap = 0
        for addr, is_write, gap in zip(
            raw.addresses.tolist(), raw.is_write.tolist(), raw.icount.tolist()
        ):
            pending_gap += gap
            block = addr >> 6
            if block in cache:
                cache.move_to_end(block)
                if is_write:
                    cache[block] = True
                continue  # LLSC hit: absorbed
            # LLSC miss: the DRAM cache sees a read (fetch/ownership).
            out_addr.append(addr)
            out_write.append(False)
            out_icount.append(pending_gap)
            pending_gap = 0
            cache[block] = bool(is_write)
            if len(cache) > capacity:
                victim, dirty = cache.popitem(last=False)
                if dirty:
                    out_addr.append(victim << 6)
                    out_write.append(True)
                    out_icount.append(1)
            if len(out_addr) >= cap:
                break
        # A miss plus its victim writeback can overshoot the cap by one.
        del out_addr[cap:], out_write[cap:], out_icount[cap:]
        if not out_addr:
            return TraceChunk(
                addresses=np.empty(0, dtype=np.uint64),
                is_write=np.empty(0, dtype=bool),
                icount=np.empty(0, dtype=np.uint32),
            )
        return TraceChunk(
            addresses=np.array(out_addr, dtype=np.uint64),
            is_write=np.array(out_write, dtype=bool),
            icount=np.array(out_icount, dtype=np.uint32),
        )

    def one_chunk(self, num_accesses: int) -> TraceChunk:
        """Generate the whole request count as a single chunk."""
        parts = list(self.chunks(num_accesses, chunk_size=num_accesses))
        if len(parts) == 1:
            return parts[0]
        return TraceChunk(
            addresses=np.concatenate([p.addresses for p in parts]),
            is_write=np.concatenate([p.is_write for p in parts]),
            icount=np.concatenate([p.icount for p in parts]),
        )

    def _apply_revisit_locality(self, regions: np.ndarray) -> np.ndarray:
        """Blend short-term dwell (loop) locality into the visit stream.

        With probability ``revisit_prob`` a visit returns to one of the
        recently visited regions (geometrically biased toward the most
        recent), modeling the loop-dwell behaviour that concentrates
        accesses on MRU ways. The recency pool persists across chunks.
        """
        prob = self.profile.revisit_prob
        if prob <= 0.0 or len(regions) == 0:
            return regions
        rng = self._rng
        n = len(regions)
        window = self.profile.revisit_window
        take_recent = rng.random(n) < prob
        # Geometric preference for the most recent entries of the pool.
        depth = np.minimum(rng.geometric(0.35, size=n) - 1, window - 1)
        # A dwell sometimes *advances* to the next region of the cluster
        # (sequential scanning through a structure) instead of repeating
        # the same region — the source of >512 B spatial locality.
        advance = rng.random(n) < 0.5
        out = regions.copy()
        pool = self._recent_regions
        last_region = _CLUSTER_REGIONS - 1
        for i in range(n):
            if take_recent[i] and pool:
                j = min(int(depth[i]), len(pool) - 1)
                region = pool[j]
                if advance[i] and (region % _CLUSTER_REGIONS) != last_region:
                    region += 1
                    pool[j] = region
                out[i] = region
            else:
                pool.insert(0, int(out[i]))
                del pool[window:]
        return out

    def _generate_chunk(self, target: int) -> TraceChunk:
        rng = self._rng
        mean_burst = self.profile.burst_len
        # Enough visits to cover the target at the expected burst length.
        n_visits = max(8, int(target / mean_burst * 1.3) + 4)

        ranks = np.searchsorted(self._rank_cdf, rng.random(n_visits))
        regions = self._ranks_to_regions(ranks)
        regions = self._apply_revisit_locality(regions)
        util = self._region_util[regions].astype(np.int64)  # k in 1..8
        offsets = self._region_offset[regions].astype(np.int64)

        # Geometric burst lengths (mean ~ burst_len), capped at one sweep
        # of the region's used sub-blocks: a visit never touches more
        # distinct data than the region's mask holds, so low-utilization
        # (pointer-chasing) regions are touched one or two sub-blocks per
        # visit — their reuse is temporal, across visits, not spatial.
        p = min(1.0, 1.0 / mean_burst)
        bursts = rng.geometric(p, size=n_visits).astype(np.int64)
        bursts = np.minimum(bursts, util)
        # Dense regions are touched by streaming passes: most visits
        # sweep the whole mask in one go (a memcpy/array pass does not
        # stop mid-line), which is what pushes their residency-lifetime
        # utilization to 8/8 (Figure 2's dense end).
        full_sweep = (util >= 5) & (rng.random(n_visits) < 0.85)
        bursts = np.where(full_sweep, util, bursts)
        # Sticky start point with utilization-dependent rotation. A
        # region with a single used sub-block can only repeat it, and the
        # LLSC upstream absorbs most exact repeats — so multi-sub-block
        # regions are revisited at *varying* offsets (rotation ~0.5),
        # which is what makes 64 B blocks miss on data that 512 B blocks
        # cover. Single-sub-block regions keep the pointer-chasing
        # stickiness that makes small blocks viable.
        rotate_prob = np.where(util >= 2, 0.5, 0.05)
        rotate = rng.random(n_visits) < rotate_prob
        fresh = (rng.random(n_visits) * util).astype(np.int64)
        if rotate.any():
            self._region_hot[regions[rotate]] = fresh[rotate].astype(np.uint8)
        starts = self._region_hot[regions].astype(np.int64) % util
        # The visit pointer advances by the burst it consumed, so dense
        # regions stream through their whole mask over a few visits
        # (full utilization), while one-sub-block visits stay sticky.
        self._region_hot[regions] = ((starts + bursts) % util).astype(np.uint8)

        total = int(bursts.sum())
        visit_of = np.repeat(np.arange(n_visits), bursts)
        j = np.arange(total) - np.repeat(np.cumsum(bursts) - bursts, bursts)

        k = util[visit_of]
        sub = (offsets[visit_of] + (starts[visit_of] + j) % k) % _SUB_BLOCKS
        addr = (
            np.uint64(self.base_address)
            + regions[visit_of].astype(np.uint64) * np.uint64(_REGION_BYTES)
            + sub.astype(np.uint64) * np.uint64(64)
        )

        if total > target:
            addr = addr[:target]
            total = target

        writes = rng.random(total) < self.profile.write_frac
        mean_gap = 1000.0 / self.profile.intensity_apki
        gaps = rng.geometric(min(1.0, 1.0 / mean_gap), size=total).astype(np.uint32)
        return TraceChunk(addresses=addr, is_write=writes, icount=gaps)

    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """Upper bound of distinct bytes this instance can touch."""
        return int(self._region_util.sum()) * 64

    def region_utilization_histogram(self) -> dict[int, float]:
        """Ground-truth utilization distribution over regions."""
        values, counts = np.unique(self._region_util, return_counts=True)
        total = counts.sum()
        return {int(v): float(c / total) for v, c in zip(values, counts)}
