"""Process-wide registry of named counters, gauges and distributions.

Simulator components already keep their own counters (``RateStat``,
``RunningMean`` and plain ints on the caches and controllers); the
registry is the *reporting* side — a flat, name-addressed bag every
layer dumps into at drive/run granularity so the tracer and exporters
see one vocabulary. Taps are pull-based: nothing in a per-record hot
loop touches the registry; ``report_metrics`` methods copy finished
counters in at span boundaries.

Names are dotted paths (``cache.hit_rate``, ``offchip.reads``,
``grid.cell_wall_s``). ``snapshot()`` flattens everything to
JSON-friendly scalars: counters and gauges verbatim, distributions as
``<name>.count/mean/min/max``, histograms as ``<name>.<bucket>``.
"""

from __future__ import annotations

from repro.common.stats import Histogram, RunningMean

__all__ = ["MetricsRegistry", "get_metrics", "set_metrics"]


class MetricsRegistry:
    """Flat, name-addressed metrics store (per process)."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, object] = {}
        self._dists: dict[str, RunningMean] = {}
        self._hists: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def add(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value) -> None:
        """Set gauge ``name`` to the latest ``value`` (any JSON scalar)."""
        self._gauges[name] = value

    def observe(self, name: str, sample: float) -> None:
        """Add ``sample`` to the streaming distribution ``name``."""
        dist = self._dists.get(name)
        if dist is None:
            dist = self._dists[name] = RunningMean()
        dist.add(sample)

    def bucket(self, name: str, bucket: int, amount: int = 1) -> None:
        """Add to integer-bucket histogram ``name``."""
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = Histogram()
        hist.add(bucket, amount)

    def update(self, values: dict, *, prefix: str = "") -> None:
        """Gauge every (possibly nested) key of ``values``.

        Nested mappings flatten with dotted keys; non-scalar leaves are
        stringified. This is the one-call tap for existing
        ``stats_snapshot()`` dictionaries.
        """
        for key, value in values.items():
            full = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, dict):
                self.update(value, prefix=full)
            elif isinstance(value, (int, float, bool)) or value is None:
                self.gauge(full, value)
            else:
                self.gauge(full, str(value))

    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> dict[str, float]:
        """Counters (optionally filtered by dotted-name ``prefix``)."""
        if not prefix:
            return dict(self._counters)
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    def distribution(self, name: str) -> RunningMean | None:
        return self._dists.get(name)

    def snapshot(self) -> dict[str, object]:
        """Flatten to sorted JSON-friendly scalars."""
        out: dict[str, object] = {}
        out.update(self._counters)
        out.update(self._gauges)
        for name, dist in self._dists.items():
            out[f"{name}.count"] = dist.count
            out[f"{name}.mean"] = dist.mean
            if dist.count:
                out[f"{name}.min"] = dist.minimum
                out[f"{name}.max"] = dist.maximum
        for name, hist in self._hists.items():
            for bucket, count in sorted(hist.buckets.items()):
                out[f"{name}.{bucket}"] = count
        return dict(sorted(out.items()))

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._dists.clear()
        self._hists.clear()

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._dists)
            + len(self._hists)
        )


_metrics = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (workers get their own copy)."""
    return _metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests); returns the previous one."""
    global _metrics
    previous = _metrics
    _metrics = registry
    return previous
