"""simlint engine: discover files, build the project model, run rules.

The engine is deliberately self-contained (stdlib ``ast`` only): it
walks the requested paths, parses every module once, builds the
cross-file :class:`ProjectModel`, runs each rule's file and project
hooks, filters per-line suppressions, and returns an ordered
:class:`LintResult`. Syntax errors surface as ``syntax`` findings
rather than crashing the run, so one broken file cannot hide the rest
of the report.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from repro.analysis.config import LintConfig
from repro.analysis.model import ProjectModel, SourceFile, Violation
from repro.analysis.rules import Rule, all_rules

__all__ = ["LintResult", "discover_files", "find_repo_root", "run_lint"]


@dataclass
class LintResult:
    """Everything one lint run produced."""

    violations: list[Violation] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: tuple[str, ...] = ()
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor carrying pyproject.toml / .git (else ``start``)."""
    start = start.resolve()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file() or (candidate / ".git").exists():
            return candidate
    return start


def discover_files(paths: list[Path], config: LintConfig) -> list[Path]:
    """All .py files under ``paths``, minus excluded globs, sorted."""
    found: set[Path] = set()
    for path in paths:
        path = path.resolve()
        if path.is_file() and path.suffix == ".py":
            found.add(path)
            continue
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                found.add(candidate)
    def excluded(path: Path) -> bool:
        posix = path.as_posix()
        return any(fnmatch(posix, glob) for glob in config.exclude)

    return sorted(p for p in found if not excluded(p))


def _load(path: Path, root: Path) -> SourceFile | Violation:
    try:
        rel = path.resolve().relative_to(root).as_posix()
    except ValueError:
        rel = path.as_posix()
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return Violation("syntax", rel, 1, 0, f"unreadable file: {exc}")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return Violation(
            "syntax", rel, exc.lineno or 1, (exc.offset or 1) - 1,
            f"syntax error: {exc.msg}",
        )
    return SourceFile(path, rel, text, tree)


def run_lint(
    paths: list[Path],
    *,
    config: LintConfig | None = None,
    root: Path | None = None,
    rules: dict[str, Rule] | None = None,
) -> LintResult:
    """Run the rule set over ``paths``; violations come back sorted."""
    config = config or LintConfig()
    root = (root or find_repo_root(paths[0] if paths else Path.cwd())).resolve()
    active = rules if rules is not None else all_rules(config.select)

    sources: list[SourceFile] = []
    violations: list[Violation] = []
    for path in discover_files(paths, config):
        loaded = _load(path, root)
        if isinstance(loaded, Violation):
            violations.append(loaded)
        else:
            sources.append(loaded)

    project = ProjectModel(sources, config)
    by_rel = {source.rel: source for source in sources}
    raw: list[Violation] = []
    for rule in active.values():
        for source in sources:
            raw.extend(rule.check_file(source, project))
        raw.extend(rule.check_project(project))

    suppressed = 0
    for violation in raw:
        source = by_rel.get(violation.path)
        if source is not None and source.is_suppressed(violation.rule, violation.line):
            suppressed += 1
            continue
        violations.append(violation)

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule, v.message))
    return LintResult(
        violations=violations,
        files_scanned=len(sources),
        rules_run=tuple(active),
        suppressed=suppressed,
    )
