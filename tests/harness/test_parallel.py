"""Parallel experiment engine: determinism, ordering and fallback."""

import os

import pytest

from repro.harness import parallel
from repro.harness.parallel import (
    AnttCell,
    GridCell,
    antt_cell,
    drive_cell,
    resolve_jobs,
    run_grid,
)
from repro.harness.runner import ExperimentSetup

SETUP = ExperimentSetup(num_cores=4, accesses_per_core=1_500)


def _square(x):
    return x * x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_used_when_unspecified(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_auto_and_zero_mean_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        expected = os.cpu_count() or 1
        assert resolve_jobs(0) == expected
        assert resolve_jobs("auto") == expected

    def test_garbage_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert resolve_jobs() == 1


class TestRunGrid:
    def test_preserves_order(self):
        assert run_grid(_square, range(10), jobs=1) == [x * x for x in range(10)]

    def test_parallel_matches_serial(self):
        serial = run_grid(_square, range(8), jobs=1)
        parallel_result = run_grid(_square, range(8), jobs=4)
        assert parallel_result == serial

    def test_empty_grid(self):
        assert run_grid(_square, [], jobs=4) == []

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        class BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("fork refused")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", BrokenPool)
        assert run_grid(_square, range(6), jobs=4) == [x * x for x in range(6)]

    def test_worker_exception_propagates(self):
        def boom(x):
            raise ValueError(f"cell {x}")

        with pytest.raises(ValueError):
            run_grid(boom, range(3), jobs=1)


class TestSimulationCells:
    """Parallel workers reproduce serial simulation results exactly."""

    def test_drive_cells_parallel_equals_serial(self):
        cells = [
            GridCell(scheme=scheme, mix=mix, setup=SETUP)
            for mix in ("Q1", "Q2")
            for scheme in ("alloy", "bimodal")
        ]
        serial = run_grid(drive_cell, cells, jobs=1)
        fanned = run_grid(drive_cell, cells, jobs=4)
        assert fanned == serial
        assert all(isinstance(stats, dict) and stats["accesses"] for stats in serial)

    def test_antt_cells_parallel_equals_serial(self):
        cells = [
            AnttCell(scheme="alloy", mix="Q1", setup=SETUP, warmup_fraction=0.5),
            AnttCell(scheme="bimodal", mix="Q1", setup=SETUP, warmup_fraction=0.5),
        ]
        serial = run_grid(antt_cell, cells, jobs=1)
        fanned = run_grid(antt_cell, cells, jobs=2)
        assert fanned == serial
        assert all(antt >= 1.0 for antt in serial)

    def test_env_jobs_routes_figures(self, monkeypatch):
        """A figure grid under REPRO_JOBS equals its serial run, dict-equal."""
        from repro.harness.experiments.performance import fig8b_hit_rate

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        serial = fig8b_hit_rate(setup=SETUP, mix_names=["Q1"])
        monkeypatch.setenv("REPRO_JOBS", "4")
        fanned = fig8b_hit_rate(setup=SETUP, mix_names=["Q1"])
        assert fanned == serial
