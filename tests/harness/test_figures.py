"""Terminal bar-chart rendering tests."""

from repro.harness.figures import bar_chart, grouped_bar_chart

ROWS = [
    {"mix": "Q2", "alloy": 140.0, "bimodal": 80.0},
    {"mix": "Q7", "alloy": 120.0, "bimodal": 100.0},
]


class TestBarChart:
    def test_renders_labels_values_and_bars(self):
        text = bar_chart(ROWS, label="mix", value="alloy", title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("Q2")
        assert "█" in lines[1]
        assert "140" in lines[1]

    def test_longest_bar_is_max_value(self):
        text = bar_chart(ROWS, label="mix", value="alloy", width=20)
        q2, q7 = text.splitlines()
        assert q2.count("█") == 20
        assert q7.count("█") < 20

    def test_proportionality(self):
        rows = [{"x": "a", "v": 10.0}, {"x": "b", "v": 5.0}]
        text = bar_chart(rows, label="x", value="v", width=30)
        a, b = text.splitlines()
        assert abs(a.count("█") - 2 * b.count("█")) <= 1

    def test_empty(self):
        assert bar_chart([], label="x", value="v") == "(no rows)"

    def test_zero_values(self):
        rows = [{"x": "a", "v": 0.0}]
        text = bar_chart(rows, label="x", value="v")
        assert "a" in text  # renders without division errors


class TestGroupedBarChart:
    def test_one_group_per_row(self):
        text = grouped_bar_chart(
            ROWS, label="mix", series=["alloy", "bimodal"], title="G"
        )
        lines = text.splitlines()
        assert lines[0] == "G"
        assert lines[1] == "Q2"
        assert lines[2].strip().startswith("alloy")
        assert lines[3].strip().startswith("bimodal")

    def test_shared_scale_across_groups(self):
        """Bars are comparable across groups: the global maximum gets
        the full width."""
        text = grouped_bar_chart(ROWS, label="mix", series=["alloy"], width=24)
        bars = [l for l in text.splitlines() if "█" in l]
        assert max(l.count("█") for l in bars) == 24

    def test_missing_series_skipped(self):
        rows = [{"mix": "Q1", "a": 1.0, "b": None}]
        text = grouped_bar_chart(rows, label="mix", series=["a", "b"])
        assert "b" not in text.splitlines()[-1]
