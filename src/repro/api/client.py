"""Clients for the ``repro serve`` daemon.

:class:`ServiceClient` is the blocking client (one request at a time
over one connection — what the CLI and scripts use);
:class:`AsyncServiceClient` multiplexes many concurrent requests over
one connection from asyncio code (what the fair-share tests use).

Both speak the envelope protocol of :mod:`repro.api.protocol` and
return the same typed objects the facade produces locally, so a caller
can swap ``facade.run_sim(req)`` for ``client.run_sim(req)`` without
touching anything downstream — results are byte-identical
(``scripts/serve_smoke.py`` asserts it in CI). Server-side rejections
surface as :class:`~repro.api.errors.ServiceError` carrying the typed
:class:`~repro.api.types.ApiError` envelope.
"""

from __future__ import annotations

import asyncio
import itertools
import socket

from repro.api.errors import ServiceError
from repro.api.protocol import parse_response_line, request_line
from repro.api.types import (
    GridRequest,
    GridResult,
    SimRequest,
    SimResult,
    StatsResult,
)
from repro.api.wire import WireError

__all__ = ["AsyncServiceClient", "ServiceClient"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7914


def _finish(kind: str, payload, expect: type):
    """Map a terminal protocol line to a return value or raised error."""
    if kind == "error":
        raise ServiceError(payload)
    if not isinstance(payload, expect):
        raise WireError(
            f"server answered with {type(payload).__name__}, "
            f"expected {expect.__name__}"
        )
    return payload


class ServiceClient:
    """Blocking connection to a ``repro serve`` daemon.

    Usable as a context manager::

        with ServiceClient(port=7914) as client:
            result = client.run_sim(request)
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float | None = None,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._ids = itertools.count(1)

    def close(self) -> None:
        self._reader.close()
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- verbs ----------------------------------------------------------
    def run_sim(self, request: SimRequest, *, on_progress=None) -> SimResult:
        """Run one simulation on the server; blocks until its result."""
        return self._call("sim", request, SimResult, on_progress)

    def run_grid(self, request: GridRequest, *, on_progress=None) -> GridResult:
        """Run one experiment grid on the server; blocks until done."""
        return self._call("grid", request, GridResult, on_progress)

    def stats(self) -> StatsResult:
        """The server's live telemetry snapshot."""
        return self._call("stats", None, StatsResult, None)

    def ping(self) -> bool:
        """True once the server answers (used to wait for startup)."""
        self._call("ping", None, StatsResult, None)
        return True

    # -- plumbing -------------------------------------------------------
    def _call(self, verb, request, expect, on_progress):
        request_id = f"c{next(self._ids)}"
        self._sock.sendall(request_line(request_id, verb, request))
        while True:
            line = self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            rid, kind, payload = parse_response_line(line)
            if rid != request_id:
                # Blocking client has one request in flight; anything
                # else is a connection-level error notice.
                if kind == "error":
                    raise ServiceError(payload)
                continue
            if kind == "event":
                if on_progress is not None:
                    on_progress(payload)
                continue
            return _finish(kind, payload, expect)


class AsyncServiceClient:
    """Asyncio connection multiplexing concurrent requests.

    Every in-flight request gets its own response queue keyed by
    envelope id; a single reader task dispatches lines to them, so
    interleaved server output cannot cross-contaminate requests.

    Use :meth:`connect` (or ``async with AsyncServiceClient.session()``)
    to open, then issue any number of overlapping awaitable verbs.
    """

    def __init__(self) -> None:
        self._reader = None
        self._writer = None
        self._ids = itertools.count(1)
        self._pending: dict[str, asyncio.Queue] = {}
        self._reader_task = None

    @classmethod
    async def connect(
        cls, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT
    ) -> "AsyncServiceClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(host, port)
        client._reader_task = asyncio.create_task(client._pump())
        return client

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- verbs ----------------------------------------------------------
    async def run_sim(self, request: SimRequest, *, on_progress=None) -> SimResult:
        return await self._call("sim", request, SimResult, on_progress)

    async def run_grid(
        self, request: GridRequest, *, on_progress=None
    ) -> GridResult:
        return await self._call("grid", request, GridResult, on_progress)

    async def stats(self) -> StatsResult:
        return await self._call("stats", None, StatsResult, None)

    async def ping(self) -> bool:
        await self._call("ping", None, StatsResult, None)
        return True

    # -- plumbing -------------------------------------------------------
    async def _pump(self) -> None:
        """Reader task: route every server line to its request queue."""
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                rid, kind, payload = parse_response_line(line)
                queue = self._pending.get(rid)
                if queue is not None:
                    queue.put_nowait((kind, payload))
        finally:
            for queue in self._pending.values():
                queue.put_nowait(("closed", None))

    async def _call(self, verb, request, expect, on_progress):
        request_id = f"a{next(self._ids)}"
        queue: asyncio.Queue = asyncio.Queue()
        self._pending[request_id] = queue
        try:
            self._writer.write(request_line(request_id, verb, request))
            await self._writer.drain()
            while True:
                kind, payload = await queue.get()
                if kind == "closed":
                    raise ConnectionError("server closed the connection")
                if kind == "event":
                    if on_progress is not None:
                        on_progress(payload)
                    continue
                return _finish(kind, payload, expect)
        finally:
            self._pending.pop(request_id, None)
