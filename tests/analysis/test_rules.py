"""Per-rule fixtures: each simlint rule fires on its violation and
stays quiet on the fixed form."""

from repro.analysis.config import LintConfig

from .conftest import STRICT


def rules_of(result):
    return [v.rule for v in result.violations]


class TestDeterminism:
    def test_wall_clock_read_flagged(self, lint):
        result = lint(
            """
            import time

            def stamp():
                return time.time()
            """,
            rules=["determinism"],
        )
        assert rules_of(result) == ["determinism"]
        assert "wall clock" in result.violations[0].message

    def test_module_level_random_flagged(self, lint):
        result = lint(
            """
            import random

            def pick():
                return random.randrange(4)
            """,
            rules=["determinism"],
        )
        assert rules_of(result) == ["determinism"]

    def test_from_imported_random_flagged(self, lint):
        result = lint(
            """
            from random import randrange

            def pick():
                return randrange(4)
            """,
            rules=["determinism"],
        )
        assert rules_of(result) == ["determinism"]

    def test_unseeded_random_instance_flagged(self, lint):
        result = lint(
            """
            import random

            def make():
                return random.Random()
            """,
            rules=["determinism"],
        )
        assert rules_of(result) == ["determinism"]

    def test_seeded_random_instance_clean(self, lint):
        result = lint(
            """
            import random

            def make(seed):
                return random.Random(seed)
            """,
            rules=["determinism"],
        )
        assert result.ok

    def test_builtin_hash_flagged(self, lint):
        # The MRC ghost pass samples by address frame; deriving that
        # decision from builtin hash() would change per process
        # (PYTHONHASHSEED) and break replay.
        result = lint(
            """
            def keep(frame, rate):
                return (hash(frame) & 0xFFFFFF) < rate
            """,
            rules=["determinism"],
        )
        assert rules_of(result) == ["determinism"]
        assert "PYTHONHASHSEED" in result.violations[0].message

    def test_seeded_multiplicative_hash_clean(self, lint):
        result = lint(
            """
            def keep(frame, salt, threshold):
                mixed = ((frame ^ salt) * 2654435761) & (2**64 - 1)
                return ((mixed >> 40) & 0xFFFFFF) < threshold
            """,
            rules=["determinism"],
        )
        assert result.ok

    def test_imported_hash_name_clean(self, lint):
        # A from-imported symbol that happens to be named `hash` is not
        # the builtin; origin tracking must keep it out of scope.
        result = lint(
            """
            from mypkg.digest import hash

            def key(payload):
                return hash(payload)
            """,
            rules=["determinism"],
        )
        assert result.ok

    def test_numpy_global_rng_flagged(self, lint):
        result = lint(
            """
            import numpy as np

            def shuffle(xs):
                np.random.shuffle(xs)
            """,
            rules=["determinism"],
        )
        assert rules_of(result) == ["determinism"]

    def test_numpy_seeded_generator_clean(self, lint):
        result = lint(
            """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """,
            rules=["determinism"],
        )
        assert result.ok

    def test_numpy_unseeded_default_rng_flagged(self, lint):
        result = lint(
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """,
            rules=["determinism"],
        )
        assert rules_of(result) == ["determinism"]

    def test_datetime_now_flagged(self, lint):
        result = lint(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            rules=["determinism"],
        )
        assert rules_of(result) == ["determinism"]

    def test_environ_iteration_flagged(self, lint):
        result = lint(
            """
            import os

            def dump():
                for key in os.environ:
                    print(key)
            """,
            rules=["determinism"],
        )
        assert rules_of(result) == ["determinism"]

    def test_unsorted_listdir_flagged_sorted_clean(self, lint):
        bad = lint(
            """
            import os

            def walk(d):
                for name in os.listdir(d):
                    print(name)
            """,
            rules=["determinism"],
        )
        assert rules_of(bad) == ["determinism"]
        good = lint(
            """
            import os

            def walk(d):
                for name in sorted(os.listdir(d)):
                    print(name)
            """,
            rules=["determinism"],
        )
        assert good.ok

    def test_set_iteration_flagged(self, lint):
        result = lint(
            """
            def walk():
                for name in {"a", "b"}:
                    print(name)
            """,
            rules=["determinism"],
        )
        assert rules_of(result) == ["determinism"]

    def test_allowlisted_module_is_skipped(self, lint):
        allow = LintConfig(determinism_allow=("mod.py",), slots_modules=())
        result = lint(
            """
            import time

            def stamp():
                return time.time()
            """,
            rules=["determinism"],
            config=allow,
        )
        assert result.ok


class TestHotPathPurity:
    def test_comprehension_flagged(self, lint):
        result = lint(
            """
            def gather_fast(xs):
                return [x + 1 for x in xs]
            """,
            rules=["hot-path-purity"],
        )
        assert rules_of(result) == ["hot-path-purity"]
        assert "ListComp" in result.violations[0].message

    def test_lambda_flagged(self, lint):
        result = lint(
            """
            def rank_fast(xs):
                key = lambda x: -x
                return key
            """,
            rules=["hot-path-purity"],
        )
        assert rules_of(result) == ["hot-path-purity"]

    def test_nested_def_flagged(self, lint):
        result = lint(
            """
            def drive_fast(xs):
                def helper(x):
                    return x
                return helper
            """,
            rules=["hot-path-purity"],
        )
        assert rules_of(result) == ["hot-path-purity"]

    def test_kwargs_expansion_flagged(self, lint):
        result = lint(
            """
            def call_fast(fn, kw):
                return fn(**kw)
            """,
            rules=["hot-path-purity"],
        )
        assert rules_of(result) == ["hot-path-purity"]

    def test_dataclass_instantiation_flagged(self, lint):
        result = lint(
            """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Rec:
                x: int

            def make_fast():
                return Rec(1)
            """,
            rules=["hot-path-purity"],
        )
        assert rules_of(result) == ["hot-path-purity"]
        assert "Rec" in result.violations[0].message

    def test_plain_fast_function_clean(self, lint):
        result = lint(
            """
            def add_fast(a, b):
                total = 0
                for x in (a, b):
                    total += x
                return total

            def slow_path(xs):
                return [x for x in xs]  # comprehensions fine off hot path
            """,
            rules=["hot-path-purity"],
        )
        assert result.ok


class TestFastReferenceParity:
    GOOD = """
        class GoodCache:
            def access_fast(self, address, now, is_write):
                self._hit = True
                return self._access_cold(address, now)

            def _access_fast(self, address, now, is_write):
                self._hit = True
                return self._access_cold(address, now)

            def _access_cold(self, address, now):
                return now
        """

    def test_shared_continuation_clean(self, lint):
        assert lint(self.GOOD, rules=["fast-reference-parity"]).ok

    def test_divergent_fast_entry_flagged(self, lint):
        result = lint(
            """
            class DriftCache:
                def access_fast(self, address, now, is_write):
                    self._hit = True
                    return now  # inline everything, shares nothing

                def _access_fast(self, address, now, is_write):
                    return self._access_cold(address, now)

                def _access_cold(self, address, now):
                    return now
            """,
            rules=["fast-reference-parity"],
        )
        assert rules_of(result) == ["fast-reference-parity"]
        assert "share no _access* continuation" in result.violations[0].message

    def test_missing_hit_scratch_flagged(self, lint):
        result = lint(
            """
            class NoScratch:
                def access_fast(self, address, now, is_write):
                    return self._access_cold(address, now)

                def _access_fast(self, address, now, is_write):
                    return self._access_cold(address, now)

                def _access_cold(self, address, now):
                    return now
            """,
            rules=["fast-reference-parity"],
        )
        assert rules_of(result) == ["fast-reference-parity"]
        assert "_hit" in result.violations[0].message

    def test_dispatcher_base_clean(self, lint):
        result = lint(
            """
            class BaseLike:
                def access_fast(self, address, now, is_write):
                    finish = self._access_fast(address, now, is_write)
                    if self._hit:
                        finish += 0
                    return finish

                def _access_fast(self, address, now, is_write):
                    ...
            """,
            rules=["fast-reference-parity"],
        )
        assert result.ok

    def test_dispatcher_base_must_route_through_hook(self, lint):
        result = lint(
            """
            class BadBase:
                def access_fast(self, address, now, is_write):
                    return now

                def _access_fast(self, address, now, is_write):
                    ...
            """,
            rules=["fast-reference-parity"],
        )
        assert rules_of(result) == ["fast-reference-parity"]
        assert "dispatch" in result.violations[0].message

    def test_rich_wrapper_must_delegate(self, lint):
        result = lint(
            """
            class DRAMCacheBase:
                pass

            class MyCache(DRAMCacheBase):
                def access(self, address, now, is_write):
                    return 1  # recomputes instead of delegating
            """,
            rules=["fast-reference-parity"],
        )
        assert rules_of(result) == ["fast-reference-parity"]
        assert "access_fast" in result.violations[0].message


class TestSchemeRegistry:
    STUB = """
        class DRAMCacheBase:
            pass

        class NewCache(DRAMCacheBase):
            def _access_fast(self, address, now, is_write):
                self._hit = True
                return now
        """
    REGISTRY = """
        def register_scheme(name, builder):
            pass

        register_scheme("new", lambda ctx: NewCache())
        """

    def test_registered_contract_clean(self, lint):
        result = lint(
            self.STUB,
            rules=["scheme-registry"],
            extra={"schemes.py": self.REGISTRY},
        )
        assert result.ok

    def test_unregistered_scheme_flagged(self, lint):
        registry = self.REGISTRY.replace("NewCache", "OtherCache")
        result = lint(
            self.STUB,
            rules=["scheme-registry"],
            extra={"schemes.py": registry},
        )
        assert rules_of(result) == ["scheme-registry"]
        assert "register_scheme" in result.violations[0].message

    def test_contract_signature_flagged(self, lint):
        result = lint(
            """
            class DRAMCacheBase:
                pass

            class NewCache(DRAMCacheBase):
                def _access_fast(self, addr):
                    self._hit = True
                    return addr
            """,
            rules=["scheme-registry"],
            extra={"schemes.py": self.REGISTRY},
        )
        assert rules_of(result) == ["scheme-registry"]
        assert "signature" in result.violations[0].message

    def test_missing_hit_scratch_flagged(self, lint):
        result = lint(
            """
            class DRAMCacheBase:
                pass

            class NewCache(DRAMCacheBase):
                def _access_fast(self, address, now, is_write):
                    return now
            """,
            rules=["scheme-registry"],
            extra={"schemes.py": self.REGISTRY},
        )
        assert rules_of(result) == ["scheme-registry"]
        assert "_hit" in result.violations[0].message

    def test_abstract_intermediate_not_flagged(self, lint):
        result = lint(
            """
            class DRAMCacheBase:
                pass

            class Intermediate(DRAMCacheBase):
                pass  # no _access_fast override: not a concrete scheme
            """,
            rules=["scheme-registry"],
            extra={"schemes.py": self.REGISTRY},
        )
        assert result.ok


class TestStatsProtocol:
    def test_duplicate_key_flagged(self, lint):
        result = lint(
            """
            class Stats:
                def to_dict(self):
                    return {"hits": 1, "hits": 2}
            """,
            rules=["stats-protocol"],
        )
        assert rules_of(result) == ["stats-protocol"]
        assert "duplicate" in result.violations[0].message

    def test_computed_key_flagged(self, lint):
        result = lint(
            """
            class Stats:
                def stats_snapshot(self):
                    out = {}
                    out[self.name] = 1
                    return out
            """,
            rules=["stats-protocol"],
        )
        assert rules_of(result) == ["stats-protocol"]
        assert "computed key" in result.violations[0].message

    def test_whitespace_key_flagged(self, lint):
        result = lint(
            """
            class Stats:
                def to_dict(self):
                    return {"hit rate": 0.5}
            """,
            rules=["stats-protocol"],
        )
        assert rules_of(result) == ["stats-protocol"]

    def test_namespaced_fstring_and_update_clean(self, lint):
        result = lint(
            """
            class Stats:
                def to_dict(self):
                    out = {"hits": 1, "misses": 2}
                    out[f"dram_cache.{self.name}"] = 3
                    out.update(self.extra)
                    return out
            """,
            rules=["stats-protocol"],
        )
        assert result.ok

    def test_other_methods_ignored(self, lint):
        result = lint(
            """
            class Stats:
                def render(self):
                    return {self.name: 1, "k": 2, "k": 3}
            """,
            rules=["stats-protocol"],
        )
        assert result.ok


class TestSlots:
    def test_plain_class_without_slots_flagged(self, lint):
        result = lint(
            """
            class Block:
                def __init__(self):
                    self.tag = 0
            """,
            rules=["slots"],
        )
        assert rules_of(result) == ["slots"]
        assert "__slots__" in result.violations[0].message

    def test_dataclass_without_slots_flagged(self, lint):
        result = lint(
            """
            from dataclasses import dataclass

            @dataclass
            class Rec:
                x: int
            """,
            rules=["slots"],
        )
        assert rules_of(result) == ["slots"]
        assert "slots=True" in result.violations[0].message

    def test_slotted_forms_clean(self, lint):
        result = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class Rec:
                x: int

            class Block:
                __slots__ = ("tag",)

                def __init__(self):
                    self.tag = 0
            """,
            rules=["slots"],
        )
        assert result.ok

    def test_exception_and_abc_hierarchies_exempt(self, lint):
        result = lint(
            """
            from abc import ABC

            class SimError(ValueError):
                pass

            class Organizer(ABC):
                def __init__(self):
                    self.table = {}

            class Concrete(Organizer):
                def __init__(self):
                    super().__init__()
                    self.extra = 1
            """,
            rules=["slots"],
        )
        assert result.ok

    def test_cold_module_not_checked(self, lint):
        cold = LintConfig(determinism_allow=(), slots_modules=("hot/*.py",))
        result = lint(
            """
            class Block:
                def __init__(self):
                    self.tag = 0
            """,
            rules=["slots"],
            config=cold,
        )
        assert result.ok


class TestSyntaxHandling:
    def test_syntax_error_is_a_finding_not_a_crash(self, lint):
        result = lint(
            """
            def broken(:
            """,
            rules=["determinism"],
        )
        assert rules_of(result) == ["syntax"]


def test_strict_fixture_config_is_strict():
    # The fixtures above rely on these two properties; pin them.
    assert STRICT.determinism_allow == ()
    assert STRICT.slots_modules == ("*.py",)


class TestBackendParity:
    GOOD_KERNEL = """
        def register_kernel(name, prep):
            def deco(fn):
                return fn
            return deco

        def _flush_stats(cache, **kw):
            pass

        def _prep(cache, chunk, lo, hi, pace, min_gap):
            return ()

        @register_kernel("ToyCache", _prep)
        def _run_toy(cache, columns, state, *, window, stall_scale):
            n_hits = 1
            _flush_stats(cache, hits=n_hits, misses=0)
        """

    def test_good_kernel_clean(self, lint):
        result = lint(self.GOOD_KERNEL, rules=["backend-parity"])
        assert result.ok

    def test_kernel_without_flush_flagged(self, lint):
        result = lint(
            """
            def register_kernel(name, prep):
                def deco(fn):
                    return fn
                return deco

            @register_kernel("ToyCache", None)
            def _run_toy(cache, columns, state, *, window, stall_scale):
                pass
            """,
            rules=["backend-parity"],
        )
        assert rules_of(result) == ["backend-parity"]
        assert "_flush_stats" in result.violations[0].message

    def test_inline_stat_accumulation_flagged(self, lint):
        result = lint(
            """
            def register_kernel(name, prep):
                def deco(fn):
                    return fn
                return deco

            def _flush_stats(cache, **kw):
                pass

            @register_kernel("ToyCache", None)
            def _run_toy(cache, columns, state, *, window, stall_scale):
                cache.hit_stat.hits += 1
                _flush_stats(cache)
            """,
            rules=["backend-parity"],
        )
        assert rules_of(result) == ["backend-parity"]
        assert "inline" in result.violations[0].message

    def test_undecorated_helper_may_accumulate(self, lint):
        # The flush helpers themselves bump stat attributes; only
        # register_kernel-decorated functions are constrained.
        result = lint(
            """
            def _flush_rate(stat, hits, misses):
                stat.hits += hits
                stat.misses += misses
            """,
            rules=["backend-parity"],
        )
        assert result.ok

    REGISTRY = """
        def register_scheme(name, builder, *, description="", backends=("scalar",)):
            pass

        register_scheme("toy", None, backends=("scalar", "vectorized"))
        register_scheme("plain", None)
        """

    def test_matching_declarations_clean(self, lint):
        result = lint(
            'VECTORIZED_SCHEMES = frozenset({"toy"})\n',
            rules=["backend-parity"],
            extra={"registry.py": self.REGISTRY},
        )
        assert result.ok

    def test_registry_flag_without_kernel_set_entry_flagged(self, lint):
        result = lint(
            "VECTORIZED_SCHEMES = frozenset(())\n",
            rules=["backend-parity"],
            extra={"registry.py": self.REGISTRY},
        )
        assert rules_of(result) == ["backend-parity"]
        assert "'toy'" in result.violations[0].message
        assert "missing from VECTORIZED_SCHEMES" in result.violations[0].message

    def test_kernel_set_entry_without_registry_flag_flagged(self, lint):
        result = lint(
            'VECTORIZED_SCHEMES = frozenset({"toy", "ghost"})\n',
            rules=["backend-parity"],
            extra={"registry.py": self.REGISTRY},
        )
        assert rules_of(result) == ["backend-parity"]
        assert "'ghost'" in result.violations[0].message

    def test_no_vectorized_module_in_scope_is_quiet(self, lint):
        result = lint(
            self.REGISTRY,
            rules=["backend-parity"],
        )
        assert result.ok
