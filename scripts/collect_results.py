#!/usr/bin/env python3
"""Collect the measured values for EXPERIMENTS.md in one sweep.

Runs every experiment at the benchmark configurations and writes a
results digest to stdout (tee it into a file). This is the script used
to populate the paper-vs-measured table.
"""

import json
import pathlib
import time

import repro.harness.experiments as E
from repro.harness.perfbench import append_bench_record, measure_drive_throughput
from repro.harness.runner import ExperimentSetup

QUAD = ExperimentSetup(num_cores=4, accesses_per_core=20_000, seed=1)
QUAD_LONG = ExperimentSetup(num_cores=4, accesses_per_core=50_000, seed=1)
EIGHT = ExperimentSetup(
    num_cores=8, scale=32, accesses_per_core=25_000, seed=1
)
ANTT = ExperimentSetup(num_cores=4, accesses_per_core=25_000, seed=1)
ANTT8 = ExperimentSetup(
    num_cores=8, scale=32, accesses_per_core=12_000, seed=1
)

QUAD_MIXES = ["Q2", "Q5", "Q7", "Q12", "Q17", "Q20", "Q23"]


def section(name):
    print(f"\n### {name} [{time.strftime('%H:%M:%S')}]", flush=True)


def dump(rows):
    print(json.dumps(rows, indent=None, default=str), flush=True)


section("fig1")
dump(E.fig1_miss_rate_vs_block_size(setup=QUAD, mix_names=QUAD_MIXES))

section("fig2")
dump(
    E.fig2_block_utilization(
        setup=QUAD, mix_names=["Q2", "Q4", "Q5", "Q7", "Q8", "Q19", "Q23"]
    )
)

section("fig3")
dump(E.fig3_latency_breakdown())

section("fig5")
dump(E.fig5_mru_hits(setup=EIGHT, mix_names=["E1", "E5", "E8", "E12", "E15"]))

section("fig7-4core")
dump(E.fig7_antt(setup=ANTT, mix_names=["Q2", "Q5", "Q7", "Q12", "Q17", "Q20", "Q23"]))

section("fig7-8core")
dump(E.fig7_antt(setup=ANTT8, mix_names=["E1", "E4", "E13"]))

section("fig8a")
dump(E.fig8a_component_analysis(setup=ANTT8, mix_names=["E1", "E4"]))

section("fig8b")
dump(E.fig8b_hit_rate(setup=QUAD, mix_names=QUAD_MIXES))

section("fig8c")
dump(E.fig8c_access_latency(setup=QUAD, mix_names=QUAD_MIXES))

section("fig9a")
dump(E.fig9a_wasted_bandwidth(setup=EIGHT, mix_names=["E5", "E8", "E15"]))

section("fig9b")
dump(E.fig9b_metadata_rbh(setup=QUAD, mix_names=["Q2", "Q7", "Q12", "Q17"]))

section("fig9c")
dump(E.fig9c_way_locator_hit_rate(setup=QUAD, mix_names=["Q2", "Q12", "Q17", "Q20"]))

section("fig10")
dump(
    E.fig10_small_block_fraction(
        setup=QUAD_LONG, mix_names=["Q2", "Q7", "Q17", "Q19", "Q23"]
    )
)

section("fig11")
dump(E.fig11_energy(setup=EIGHT, mix_names=["E1", "E4", "E9"]))

section("fig12")
dump(E.fig12_sensitivity(setup=ANTT, mix_names=["Q2", "Q12"]))

section("table3")
dump(E.table3_way_locator_storage())

section("table6")
dump(E.table6_prefetch(setup=QUAD, mix_names=["Q2", "Q12", "Q20"]))

section("ext-victim")
dump(E.victim_buffer_study(setup=QUAD, mix_names=["Q2", "Q7", "Q23"]))

section("ext-spaceutil")
dump(E.space_utilization_comparison(setup=QUAD_LONG, mix_names=["Q2", "Q7", "Q23"]))

section("bench-perf")
_bench = [
    measure_drive_throughput(mode=mode, repeats=3) for mode in ("legacy", "fast")
]
dump([r.row() for r in _bench])
_bench_path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_perf.json"
append_bench_record(_bench, _bench_path)
print(f"appended throughput entry to {_bench_path}", flush=True)

section("done")
