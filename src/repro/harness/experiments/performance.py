"""System-performance experiments: Figure 7, Figure 8(a), Figure 8(b).

ANTT measurements follow the paper's protocol exactly: every program in
the mix runs multiprogrammed, then standalone under the *same* cache
scheme, and ANTT is the mean slowdown. Improvement is reported as the
relative ANTT reduction of Bi-Modal over the AlloyCache baseline.

Each (scheme, mix) measurement is an independent cell dispatched through
:func:`repro.harness.parallel.run_grid`, so figure-level grids fan out
over ``REPRO_JOBS`` workers with results identical to a serial run.
Under fault collection a permanently failed cell drops only its mix's
row (via :func:`~repro.harness.parallel.complete_groups`); the other
rows still export.
"""

from __future__ import annotations

from repro.cores.metrics import improvement_percent
from repro.cores.multiprog import MultiProgramRunner
from repro.harness.parallel import (
    AnttCell,
    GridCell,
    antt_cell,
    complete_groups,
    drive_cell,
    run_grid,
)
from repro.harness.reporting import append_mean_row
from repro.harness.runner import ExperimentSetup, build_cache
from repro.workloads.mixes import mixes_for_cores

__all__ = ["measure_antt", "fig7_antt", "fig8a_component_analysis", "fig8b_hit_rate"]


def measure_antt(
    scheme: str,
    mix_name: str,
    *,
    setup: ExperimentSetup,
    accesses_per_core: int | None = None,
) -> tuple[float, object]:
    """ANTT of one scheme on one mix under the scaled Table IV config."""
    mixes = mixes_for_cores(setup.num_cores)
    mix = mixes[mix_name]
    total = (accesses_per_core or setup.accesses_per_core) * setup.num_cores
    runner = MultiProgramRunner(
        mix,
        lambda: build_cache(
            scheme,
            setup.system,
            scale=setup.scale,
            adaptation_interval=max(1_000, total // 150),
        ),
        accesses_per_core=accesses_per_core or setup.accesses_per_core,
        seed=setup.seed,
        footprint_scale=setup.footprint_scale,
        intensity_scale=setup.intensity_scale,
        warmup_fraction=0.5,
    )
    return runner.run_antt()


def _fig_antt_cell(scheme: str, mix: str, setup: ExperimentSetup) -> AnttCell:
    """Cell equivalent of :func:`measure_antt` (same protocol knobs)."""
    return AnttCell(
        scheme=scheme,
        mix=mix,
        setup=setup,
        warmup_fraction=0.5,
        intensity_scale=setup.intensity_scale,
    )


def fig7_antt(
    *,
    num_cores: int = 4,
    mix_names: list[str] | None = None,
    setup: ExperimentSetup | None = None,
    schemes: tuple[str, str] = ("alloy", "bimodal"),
    jobs: int | None = None,
) -> list[dict]:
    """Figure 7: ANTT improvement of Bi-Modal over AlloyCache.

    Paper: 10.8% (4-core), 13.8% (8-core), 14.0% (16-core) on average.
    """
    setup = setup or ExperimentSetup(num_cores=num_cores)
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    baseline_name, improved_name = schemes
    cells = [
        _fig_antt_cell(scheme, name, setup) for name in names for scheme in schemes
    ]
    antts = run_grid(antt_cell, cells, jobs=jobs)
    rows = []
    for name, (base_antt, new_antt) in complete_groups(names, antts, 2):
        rows.append(
            {
                "mix": name,
                baseline_name: base_antt,
                improved_name: new_antt,
                "improvement_pct": improvement_percent(base_antt, new_antt),
            }
        )
    return append_mean_row(rows)


def fig8a_component_analysis(
    *,
    mix_names: list[str] | None = None,
    setup: ExperimentSetup | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Figure 8(a): Bi-Modal-Only and Way-Locator-Only vs the full design.

    Both components independently improve ANTT over AlloyCache; the full
    Bi-Modal cache captures both gains (8-core workloads in the paper).
    """
    setup = setup or ExperimentSetup(num_cores=8)
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    schemes = ("alloy", "bimodal-only", "wayloc-only", "bimodal")
    cells = [
        _fig_antt_cell(scheme, name, setup) for name in names for scheme in schemes
    ]
    antts = run_grid(antt_cell, cells, jobs=jobs)
    rows = []
    for name, chunk in complete_groups(names, antts, len(schemes)):
        per_mix = dict(zip(schemes, chunk))
        row = {"mix": name}
        for s in schemes[1:]:
            row[f"{s}_pct"] = improvement_percent(per_mix["alloy"], per_mix[s])
        rows.append(row)
    return append_mean_row(rows)


def fig8b_hit_rate(
    *,
    mix_names: list[str] | None = None,
    setup: ExperimentSetup | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Figure 8(b): DRAM cache hit rates of Alloy, fixed-512B and Bi-Modal.

    The paper reports average hit-rate gains over AlloyCache of 29%
    (fixed 512 B) and 38% (Bi-Modal, via better space utilization).
    """
    setup = setup or ExperimentSetup()
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    schemes = ("alloy", "fixed512", "bimodal")
    cells = [
        GridCell(scheme=scheme, mix=name, setup=setup)
        for name in names
        for scheme in schemes
    ]
    stats = run_grid(drive_cell, cells, jobs=jobs)
    rows = []
    for name, chunk in complete_groups(names, stats, len(schemes)):
        row: dict = {"mix": name}
        for scheme, cell_stats in zip(schemes, chunk):
            row[scheme] = cell_stats["hit_rate"]
        row["fixed512_gain_pct"] = improvement_percent(
            1 - row["alloy"], 1 - row["fixed512"]
        )
        row["bimodal_gain_pct"] = improvement_percent(
            1 - row["alloy"], 1 - row["bimodal"]
        )
        rows.append(row)
    return append_mean_row(rows)
