"""Rule ``hot-path-purity`` — ``*_fast`` functions stay allocation-lean.

The PR 4 timing kernel's throughput rests on the ``*_fast`` entry
points never hitting the allocator: the drive loop calls them hundreds
of thousands of times per cell, and one comprehension or closure per
access erases the batching win and reintroduces gc pauses (tracked per
cell by ``perfbench``). Inside any function whose name matches a
configured hot-path pattern this rule bans:

* closures: ``lambda`` and nested ``def``;
* comprehensions and generator expressions (each allocates a fresh
  object — and a frame, for generators — per evaluation);
* ``**kwargs`` call expansion (allocates a dict per call);
* instantiating any project ``@dataclass`` (record objects belong on
  the rich wrapper path, plain ints on the fast path).
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from collections.abc import Iterator

from repro.analysis.model import ProjectModel, SourceFile, Violation
from repro.analysis.rules import Rule, register_rule

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


@register_rule
class HotPathPurityRule(Rule):
    name = "hot-path-purity"
    version = 1
    description = (
        "*_fast functions may not allocate closures, comprehensions, "
        "dataclasses or **kwargs calls"
    )
    rationale = (
        "The drive loop calls *_fast entry points hundreds of "
        "thousands of times per grid cell. One comprehension, lambda, "
        "**kwargs dict or dataclass instantiation per call erases the "
        "batching win and reintroduces gc pauses — a regression no "
        "functional test catches, only throughput numbers."
    )
    example_bad = """\
def probe_fast(tags, tag):
    return [t for t in tags if t == tag]
"""
    example_good = """\
def probe_fast(tags, tag):
    for t in tags:
        if t == tag:
            return t
    return None
"""

    def check_file(
        self, source: SourceFile, project: ProjectModel
    ) -> Iterator[Violation]:
        patterns = project.config.hotpath_patterns
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and any(
                fnmatch(node.name, pattern) for pattern in patterns
            ):
                yield from self._check_function(source, project, node)

    def _check_function(
        self,
        source: SourceFile,
        project: ProjectModel,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Violation]:
        label = func.name
        stack: list[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield source.violation(
                    self.name, node,
                    f"{label} defines nested function {node.name!r}: closure "
                    "allocation on the hot path",
                )
                continue  # findings inside it would be double counted
            if isinstance(node, ast.Lambda):
                yield source.violation(
                    self.name, node,
                    f"{label} allocates a lambda closure on the hot path",
                )
                continue
            if isinstance(node, _COMPREHENSIONS):
                kind = type(node).__name__
                yield source.violation(
                    self.name, node,
                    f"{label} allocates a {kind} per call; hoist it or use "
                    "an explicit loop",
                )
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is None:
                        yield source.violation(
                            self.name, node,
                            f"{label} calls with **kwargs expansion "
                            "(allocates a dict per call)",
                        )
                        break
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in project.dataclass_names
                ):
                    yield source.violation(
                        self.name, node,
                        f"{label} instantiates dataclass {node.func.id!r}; "
                        "hot paths return plain ints, rich records belong "
                        "to the wrapper path",
                    )
            stack.extend(ast.iter_child_nodes(node))
