"""Rule ``determinism-flow`` — entropy must not *reach* exported results.

The syntactic ``determinism`` rule bans ambient-entropy reads outright
in sim-core modules. This rule covers what that one cannot see: a
wall-clock or hash-seed value picked up legitimately (or smuggled
through a helper) that **flows** into something the repo treats as a
replayable artifact — a stats export, a wire encoding, a checkpoint
result payload. It runs the interprocedural taint engine of
:mod:`repro.analysis.flow` over the whole project:

* **sources** — wall clock (``time.time``/``datetime.now``/...), OS
  entropy (``os.urandom``, ``uuid*``), process-unstable identity
  (``id()``, builtin ``hash()``, ``os.getpid``), environment reads,
  and set-iteration order;
* **sinks** — the return values of ``to_dict``/``stats_snapshot``
  methods, arguments to ``flatten_stats``/``export_json``/
  ``export_csv``/``append_mean_row``, the wire codec entry points
  (``to_wire``/``encode_line``/``dumps_strict``), and the ``result=``
  payload of a checkpoint ``append``;
* **sanitizers** — the ``determinism_allow`` module globs (obs,
  analysis, perfbench bookkeeping): values returned *from* those
  modules are trusted, and flows whose sink lives there are exempt;
  ``sorted()`` neutralizes iteration-order taint.

Timing metadata that is *meant* to be environmental (``wall_s`` on a
checkpoint row, tracer spans) is either outside the sink argument set
or inside sanitizer modules, so it does not trip the rule.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.flow import SinkSpec
from repro.analysis.model import ProjectModel, Violation
from repro.analysis.rules import Rule, register_rule

SINKS: list[SinkSpec] = [
    SinkSpec(
        kind="stats-export",
        resolved=frozenset({
            "repro.harness.export.flatten_stats",
            "repro.harness.export.export_json",
            "repro.harness.export.export_csv",
            "repro.harness.reporting.append_mean_row",
        }),
        return_of=frozenset({"to_dict", "stats_snapshot"}),
    ),
    SinkSpec(
        kind="wire-encode",
        resolved=frozenset({
            "repro.api.wire.to_wire",
            "repro.api.wire.encode_line",
            "repro.api.wire.dumps_strict",
        }),
    ),
    SinkSpec(
        kind="checkpoint-write",
        tails=frozenset({"append"}),
        require_kwargs=frozenset({"result"}),
        kwargs_only=frozenset({"result"}),
    ),
]

_KIND_HINTS = {
    "wallclock": "wall-clock reads replay differently on every run",
    "entropy": "OS entropy is unseedable",
    "hash-seed": "builtin hash() varies with PYTHONHASHSEED",
    "object-address": "id() varies with allocator layout",
    "process-id": "PIDs differ across runs",
    "environment": "environment contents differ across hosts",
    "set-order": "set iteration order depends on the hash seed",
}


@register_rule
class DeterminismFlowRule(Rule):
    name = "determinism-flow"
    version = 1
    description = (
        "ambient entropy (wall clock, hash seed, set order, env) must "
        "not flow into stats exports, wire encodings or checkpoints"
    )
    rationale = (
        "Golden-stats byte identity and checkpoint-resume exactness "
        "require every exported number to be a pure function of config "
        "+ seed. The syntactic determinism rule bans entropy reads in "
        "core modules; this flow rule catches the leak the ban cannot "
        "see — entropy read legitimately (or in an allowlisted module) "
        "that travels through helpers into a to_dict/stats/wire/"
        "checkpoint sink. sorted() launders iteration-order taint; "
        "returns from determinism_allow modules are trusted."
    )
    example_bad = """\
import time

def stamp():
    return time.time()

class Stats:
    def to_dict(self):
        return {"t": stamp()}  # wall clock flows into the export
"""
    example_good = """\
class Stats:
    def __init__(self, accesses):
        self.accesses = accesses

    def to_dict(self):
        return {"accesses": self.accesses}
"""

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        analysis = project.taint(SINKS)
        for finding in analysis.findings():
            hints = "; ".join(
                _KIND_HINTS.get(kind, kind) for kind in finding.kinds
            )
            kinds = ", ".join(finding.kinds)
            message = (
                f"{kinds} taint reaches {finding.sink_kind} sink via "
                f"{finding.via} ({hints}); derive the value from config + "
                "seed, or sanitize through an allowlisted obs/analysis "
                "helper"
            )
            source = project.source_for(finding.rel)
            if source is not None:
                yield source.violation(self.name, finding.lineno, message)
            else:
                yield Violation(self.name, finding.rel, finding.lineno, 0,
                                message)
