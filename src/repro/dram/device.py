"""A complete DRAM device: channels, banks and address interleaving.

Used twice in the system:

* as **off-chip main memory** (DDR3-1600H) where requests carry physical
  addresses decoded with the paper's ``row-rank-bank-mc-column``
  interleaving (Table IV) — ranks are folded into the bank dimension; and
* as the **stacked DRAM** of the cache, where organizations compute their
  own (channel, bank, row) placement (e.g. the Bi-Modal metadata bank) and
  use :meth:`DRAMDevice.access_direct`.

Timing kernel
-------------
The device *is* the per-access timing kernel: all bank state (open row,
ready time, refresh clock, row-buffer counters) and channel state (bus
free time, busy cycles) live in flat lists indexed by
``channel * banks_per_channel + bank``, and one flat method
(:meth:`_timed`) resolves an access end to end — row-buffer case, CAS,
refresh, bus serialization — without allocating any intermediate
objects. The ``*_fast`` entry points return the plain-int data-end time
and leave the row-buffer outcome and data-start in the ``last_outcome``
/ ``last_data_start`` scratch attributes; the rich entry points
(:meth:`read`, :meth:`write`, :meth:`access_direct`,
:meth:`column_direct`) wrap the same kernel and build the
:class:`~repro.dram.channel.ChannelAccess` record tests and tools
consume. The standalone :class:`~repro.dram.bank.Bank` /
:class:`~repro.dram.channel.Channel` classes model exactly the same
contract object-per-bank; ``tests/dram/test_reference_validation.py``
cross-checks kernel, object model and the command-level
:class:`~repro.dram.reference.ReferenceBank` against each other so the
implementations cannot drift.

Address decode is pure mask/shift: the field widths are precomputed in
``__init__`` and the modulo fold for non-power-of-two channel/bank
counts is skipped entirely when the count is a power of two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.addressing import SUB_BLOCK_BITS, log2_int
from repro.common.config import DRAMGeometry, DRAMTimingConfig
from repro.common.stats import RateStat
from repro.dram.bank import RowOutcome
from repro.dram.channel import ChannelAccess

__all__ = ["DRAMLocation", "DRAMDevice"]

# Per-channel refresh stagger in cycles (see channel.build_channels):
# bank ``i`` of every channel refreshes ``i * 97`` cycles after bank 0.
_REFRESH_STAGGER = 97

_OUTCOMES = (RowOutcome.HIT, RowOutcome.CLOSED, RowOutcome.CONFLICT)


@dataclass(slots=True)
class DRAMLocation:
    """Decoded placement of an address."""

    channel: int
    bank: int
    row: int
    column: int  # 64B-burst index within the row


class DRAMDevice:
    """Flat timing kernel + row-rank-bank-mc-column interleaving."""

    __slots__ = (
        "name",
        "geometry",
        "timings",
        "_nch",
        "_nbk",
        "_trcd",
        "_trp",
        "_trp_trcd",
        "_cl",
        "_tccd",
        "_burst_cycles",
        "_trefi",
        "_trfc",
        "_open_row",
        "_ready_at",
        "_next_refresh",
        "_rb_hits",
        "_rb_misses",
        "_activations",
        "_precharges",
        "_refreshes",
        "_bus_free",
        "_bus_busy",
        "_column_bits",
        "_channel_bits",
        "_bank_bits",
        "_column_mask",
        "_channel_mask",
        "_bank_mask",
        "_cbr_shift",
        "_mod_channels",
        "_mod_banks",
        "reads",
        "writes",
        "bytes_transferred",
        "last_outcome",
        "last_data_start",
    )

    def __init__(
        self,
        geometry: DRAMGeometry,
        timings: DRAMTimingConfig,
        *,
        name: str = "dram",
    ) -> None:
        self.name = name
        self.geometry = geometry
        self.timings = timings
        nch = geometry.channels
        nbk = geometry.banks_per_channel
        self._nch = nch
        self._nbk = nbk
        banks = nch * nbk
        # Timing constants, flattened for the kernel.
        self._trcd = timings.trcd
        self._trp = timings.trp
        self._trp_trcd = timings.trp + timings.trcd
        self._cl = timings.cl
        self._tccd = timings.tccd
        self._burst_cycles = timings.burst_cycles
        self._trefi = timings.trefi
        self._trfc = timings.trfc
        # Per-bank state (flat, index = channel * nbk + bank).
        self._open_row = [-1] * banks  # -1 = precharged/closed
        self._ready_at = [0] * banks
        self._next_refresh = [
            timings.trefi + (i % nbk) * _REFRESH_STAGGER for i in range(banks)
        ]
        self._rb_hits = [0] * banks
        self._rb_misses = [0] * banks
        self._activations = [0] * banks
        self._precharges = [0] * banks
        self._refreshes = [0] * banks
        # Per-channel bus state.
        self._bus_free = [0] * nch
        self._bus_busy = [0] * nch
        # Address decode tables: LSB -> column, channel (mc), bank, row.
        self._column_bits = log2_int(geometry.page_size // 64)
        self._channel_bits = log2_int(_ceil_pow2(nch))
        self._bank_bits = log2_int(_ceil_pow2(nbk))
        self._column_mask = (1 << self._column_bits) - 1
        self._channel_mask = (1 << self._channel_bits) - 1
        self._bank_mask = (1 << self._bank_bits) - 1
        self._cbr_shift = SUB_BLOCK_BITS + self._column_bits
        # Non-power-of-two counts need a modulo fold after masking.
        self._mod_channels = (1 << self._channel_bits) != nch
        self._mod_banks = (1 << self._bank_bits) != nbk
        self.reads = 0
        self.writes = 0
        self.bytes_transferred = 0
        # Kernel scratch: outcome (0 hit / 1 closed / 2 conflict) and
        # data-start of the most recent timed access, for the rich
        # wrappers and per-access instrumentation (metadata RBH).
        self.last_outcome = 0
        self.last_data_start = 0

    # ------------------------------------------------------------------
    # address decoding (off-chip use)
    # ------------------------------------------------------------------
    def decode(self, address: int) -> DRAMLocation:
        """Split an address: LSB -> column, channel (mc), bank, row."""
        bits = address >> SUB_BLOCK_BITS
        column = bits & self._column_mask
        bits >>= self._column_bits
        channel = bits & self._channel_mask
        bits >>= self._channel_bits
        bank = bits & self._bank_mask
        row = bits >> self._bank_bits
        if self._mod_channels:
            channel %= self._nch
        if self._mod_banks:
            bank %= self._nbk
        return DRAMLocation(channel=channel, bank=bank, row=row, column=column)

    def channel_of(self, address: int) -> int:
        """Channel index only (memory-controller queue lookup)."""
        channel = (address >> self._cbr_shift) & self._channel_mask
        if self._mod_channels:
            channel %= self._nch
        return channel

    def decode_fields(self) -> dict[str, int]:
        """Decode tables as plain ints, for array-friendly consumers.

        The vectorized drive backend builds whole-chunk (channel, bank,
        row) columns from these widths/masks instead of calling
        :meth:`decode` per record; values mirror the ``__init__``
        precomputation exactly.
        """
        return {
            "channels": self._nch,
            "banks_per_channel": self._nbk,
            "column_bits": self._column_bits,
            "channel_bits": self._channel_bits,
            "bank_bits": self._bank_bits,
            "column_mask": self._column_mask,
            "channel_mask": self._channel_mask,
            "bank_mask": self._bank_mask,
            "cbr_shift": self._cbr_shift,
            "mod_channels": int(self._mod_channels),
            "mod_banks": int(self._mod_banks),
        }

    def timing_constants(self) -> dict[str, int]:
        """Flattened timing constants (plain ints) for fused kernels."""
        return {
            "trcd": self._trcd,
            "trp": self._trp,
            "trp_trcd": self._trp_trcd,
            "cl": self._cl,
            "tccd": self._tccd,
            "burst_cycles": self._burst_cycles,
            "trefi": self._trefi,
            "trfc": self._trfc,
        }

    # ------------------------------------------------------------------
    # the flat timing kernel
    # ------------------------------------------------------------------
    def _timed(
        self,
        channel: int,
        bank: int,
        row: int,
        now: int,
        bursts: int,
        transfer_cycles: int | None,
    ) -> int:
        """Resolve one row-buffer-managed access; returns data-end time.

        Exactly the composition of ``Bank.access`` + ``Channel.access``:
        refresh adjustment, HIT/CLOSED/CONFLICT resolution, CAS
        pipelining (tCCD), then serialization on the channel's shared
        data bus. Row-buffer and command counters are updated in place;
        ``last_outcome`` / ``last_data_start`` record the per-access
        scratch the rich wrappers and RBH instrumentation read.
        """
        idx = channel * self._nbk + bank
        ready = self._ready_at
        t = ready[idx]
        if now > t:
            t = now
        if t >= self._next_refresh[idx]:
            t = self._refresh_stall(idx, t)
        open_rows = self._open_row
        current = open_rows[idx]
        if current == row:
            self.last_outcome = 0
            self._rb_hits[idx] += 1
            cas_issue = t
        elif current < 0:
            self.last_outcome = 1
            self._activations[idx] += 1
            self._rb_misses[idx] += 1
            cas_issue = t + self._trcd
        else:
            self.last_outcome = 2
            self._precharges[idx] += 1
            self._activations[idx] += 1
            self._rb_misses[idx] += 1
            cas_issue = t + self._trp_trcd
        open_rows[idx] = row
        ready[idx] = cas_issue + self._tccd
        cas_done = cas_issue + self._cl
        bus_free = self._bus_free
        start = bus_free[channel]
        if cas_done > start:
            start = cas_done
        cycles = (
            bursts * self._burst_cycles if transfer_cycles is None else transfer_cycles
        )
        end = start + cycles
        bus_free[channel] = end
        self._bus_busy[channel] += cycles
        self.last_data_start = start
        return end

    def _refresh_stall(self, idx: int, t: int) -> int:
        """Slow path: ``t`` crossed tREFI (see ``Bank._refresh_stall``)."""
        next_refresh = self._next_refresh
        elapsed = t - next_refresh[idx]
        completed = elapsed // self._trefi
        self._refreshes[idx] += completed
        next_refresh[idx] += completed * self._trefi
        # The bank is mid-refresh if t lands inside [start, start + tRFC).
        if t < next_refresh[idx] + self._trfc:
            t = next_refresh[idx] + self._trfc
        self._refreshes[idx] += 1
        next_refresh[idx] += self._trefi
        self._open_row[idx] = -1
        return t

    def _timed_column(self, channel: int, bank: int, now: int, bursts: int) -> int:
        """Column access to a row opened via :meth:`activate_direct`."""
        idx = channel * self._nbk + bank
        if self._open_row[idx] < 0:
            raise RuntimeError("column_access requires an open row")
        ready = self._ready_at
        t = ready[idx]
        if now > t:
            t = now
        ready[idx] = t + self._tccd
        cas_done = t + self._cl
        bus_free = self._bus_free
        start = bus_free[channel]
        if cas_done > start:
            start = cas_done
        cycles = bursts * self._burst_cycles
        end = start + cycles
        bus_free[channel] = end
        self._bus_busy[channel] += cycles
        self.last_outcome = 0
        self.last_data_start = start
        return end

    # ------------------------------------------------------------------
    # fast timed accesses (plain-int results, no allocation)
    # ------------------------------------------------------------------
    def read_fast(self, address: int, now: int, bursts: int = 1) -> int:
        """Read ``bursts`` consecutive 64 B beats; returns data-end time.

        Multi-burst reads stay within one row for any transfer that does
        not cross a page boundary (the paper's big blocks never do).

        The :meth:`_timed` kernel is inlined here (and in
        :meth:`write_fast` / :meth:`access_direct_fast`): these three are
        the hottest functions in the repository and the extra call frame
        is measurable. The reference-validation test pins all copies to
        the object model, so they cannot drift independently.
        """
        bits = address >> self._cbr_shift
        channel = bits & self._channel_mask
        bits >>= self._channel_bits
        bank = bits & self._bank_mask
        row = bits >> self._bank_bits
        if self._mod_channels:
            channel %= self._nch
        if self._mod_banks:
            bank %= self._nbk
        self.reads += 1
        self.bytes_transferred += bursts * 64
        # --- inlined _timed kernel ---
        idx = channel * self._nbk + bank
        ready = self._ready_at
        t = ready[idx]
        if now > t:
            t = now
        if t >= self._next_refresh[idx]:
            t = self._refresh_stall(idx, t)
        open_rows = self._open_row
        current = open_rows[idx]
        if current == row:
            self.last_outcome = 0
            self._rb_hits[idx] += 1
            cas_issue = t
        elif current < 0:
            self.last_outcome = 1
            self._activations[idx] += 1
            self._rb_misses[idx] += 1
            cas_issue = t + self._trcd
        else:
            self.last_outcome = 2
            self._precharges[idx] += 1
            self._activations[idx] += 1
            self._rb_misses[idx] += 1
            cas_issue = t + self._trp_trcd
        open_rows[idx] = row
        ready[idx] = cas_issue + self._tccd
        cas_done = cas_issue + self._cl
        bus_free = self._bus_free
        start = bus_free[channel]
        if cas_done > start:
            start = cas_done
        end = start + bursts * self._burst_cycles
        bus_free[channel] = end
        self._bus_busy[channel] += end - start
        self.last_data_start = start
        return end

    def write_fast(self, address: int, now: int, bursts: int = 1) -> int:
        """Write; same row-buffer management as reads in this model."""
        bits = address >> self._cbr_shift
        channel = bits & self._channel_mask
        bits >>= self._channel_bits
        bank = bits & self._bank_mask
        row = bits >> self._bank_bits
        if self._mod_channels:
            channel %= self._nch
        if self._mod_banks:
            bank %= self._nbk
        self.writes += 1
        self.bytes_transferred += bursts * 64
        # --- inlined _timed kernel (see read_fast) ---
        idx = channel * self._nbk + bank
        ready = self._ready_at
        t = ready[idx]
        if now > t:
            t = now
        if t >= self._next_refresh[idx]:
            t = self._refresh_stall(idx, t)
        open_rows = self._open_row
        current = open_rows[idx]
        if current == row:
            self.last_outcome = 0
            self._rb_hits[idx] += 1
            cas_issue = t
        elif current < 0:
            self.last_outcome = 1
            self._activations[idx] += 1
            self._rb_misses[idx] += 1
            cas_issue = t + self._trcd
        else:
            self.last_outcome = 2
            self._precharges[idx] += 1
            self._activations[idx] += 1
            self._rb_misses[idx] += 1
            cas_issue = t + self._trp_trcd
        open_rows[idx] = row
        ready[idx] = cas_issue + self._tccd
        cas_done = cas_issue + self._cl
        bus_free = self._bus_free
        start = bus_free[channel]
        if cas_done > start:
            start = cas_done
        end = start + bursts * self._burst_cycles
        bus_free[channel] = end
        self._bus_busy[channel] += end - start
        self.last_data_start = start
        return end

    def access_direct_fast(
        self,
        channel: int,
        bank: int,
        row: int,
        now: int,
        bursts: int = 1,
        transfer_cycles: int | None = None,
    ) -> int:
        """Access an explicitly placed row (stacked-DRAM cache use)."""
        self.reads += 1
        self.bytes_transferred += bursts * 64
        # --- inlined _timed kernel (see read_fast) ---
        idx = channel * self._nbk + bank
        ready = self._ready_at
        t = ready[idx]
        if now > t:
            t = now
        if t >= self._next_refresh[idx]:
            t = self._refresh_stall(idx, t)
        open_rows = self._open_row
        current = open_rows[idx]
        if current == row:
            self.last_outcome = 0
            self._rb_hits[idx] += 1
            cas_issue = t
        elif current < 0:
            self.last_outcome = 1
            self._activations[idx] += 1
            self._rb_misses[idx] += 1
            cas_issue = t + self._trcd
        else:
            self.last_outcome = 2
            self._precharges[idx] += 1
            self._activations[idx] += 1
            self._rb_misses[idx] += 1
            cas_issue = t + self._trp_trcd
        open_rows[idx] = row
        ready[idx] = cas_issue + self._tccd
        cas_done = cas_issue + self._cl
        bus_free = self._bus_free
        start = bus_free[channel]
        if cas_done > start:
            start = cas_done
        if transfer_cycles is None:
            end = start + bursts * self._burst_cycles
        else:
            end = start + transfer_cycles
        bus_free[channel] = end
        self._bus_busy[channel] += end - start
        self.last_data_start = start
        return end

    def column_direct_fast(
        self, channel: int, bank: int, now: int, bursts: int = 1
    ) -> int:
        """Column access to a row opened via :meth:`activate_direct`."""
        self.reads += 1
        self.bytes_transferred += bursts * 64
        return self._timed_column(channel, bank, now, bursts)

    def activate_direct(self, channel: int, bank: int, row: int, now: int) -> int:
        """Open a row without data transfer (anticipatory activation)."""
        idx = channel * self._nbk + bank
        ready = self._ready_at
        t = ready[idx]
        if now > t:
            t = now
        if t >= self._next_refresh[idx]:
            t = self._refresh_stall(idx, t)
        open_rows = self._open_row
        current = open_rows[idx]
        if current == row:
            if t > ready[idx]:
                ready[idx] = t
            return t
        if current >= 0:
            t += self._trp
            self._precharges[idx] += 1
        t += self._trcd
        self._activations[idx] += 1
        open_rows[idx] = row
        ready[idx] = t
        return t

    # ------------------------------------------------------------------
    # rich timed accesses (dataclass results, tests / tooling)
    # ------------------------------------------------------------------
    def read(self, address: int, now: int, *, bursts: int = 1) -> ChannelAccess:
        """Rich wrapper of :meth:`read_fast` (same kernel, same state)."""
        end = self.read_fast(address, now, bursts)
        return ChannelAccess(
            _OUTCOMES[self.last_outcome], now, self.last_data_start, end, bursts
        )

    def write(self, address: int, now: int, *, bursts: int = 1) -> ChannelAccess:
        end = self.write_fast(address, now, bursts)
        return ChannelAccess(
            _OUTCOMES[self.last_outcome], now, self.last_data_start, end, bursts
        )

    def access_direct(
        self,
        channel: int,
        bank: int,
        row: int,
        now: int,
        *,
        bursts: int = 1,
        transfer_cycles: int | None = None,
    ) -> ChannelAccess:
        if bursts < 1:
            raise ValueError("bursts must be >= 1")
        end = self.access_direct_fast(channel, bank, row, now, bursts, transfer_cycles)
        return ChannelAccess(
            _OUTCOMES[self.last_outcome], now, self.last_data_start, end, bursts
        )

    def column_direct(
        self, channel: int, bank: int, now: int, *, bursts: int = 1
    ) -> ChannelAccess:
        end = self.column_direct_fast(channel, bank, now, bursts)
        return ChannelAccess(
            outcome=RowOutcome.HIT,
            request_time=now,
            data_start=self.last_data_start,
            data_end=end,
            bursts=bursts,
        )

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def row_buffer_hit_rate(self) -> float:
        hits = sum(self._rb_hits)
        total = hits + sum(self._rb_misses)
        return hits / total if total else 0.0

    def total_activations(self) -> int:
        return sum(self._activations)

    def total_precharges(self) -> int:
        return sum(self._precharges)

    def reset_stats(self) -> None:
        # In-place zeroing: callers (the bimodal kernel) hoist references
        # to these lists, so the objects must survive a warmup reset.
        banks = self._nch * self._nbk
        self._rb_hits[:] = [0] * banks
        self._rb_misses[:] = [0] * banks
        self._activations[:] = [0] * banks
        self._precharges[:] = [0] * banks
        self._refreshes[:] = [0] * banks
        self._bus_busy[:] = [0] * self._nch
        self.reads = 0
        self.writes = 0
        self.bytes_transferred = 0

    # ------------------------------------------------------------------
    # structural views (tests / debugging; never on the hot path)
    # ------------------------------------------------------------------
    @property
    def channels(self) -> list["_ChannelView"]:
        """Read-only per-channel/bank views over the flat kernel state."""
        return [_ChannelView(self, c) for c in range(self._nch)]


class _BankView:
    """Read-only view of one bank's slice of the flat kernel state."""

    __slots__ = ("_device", "_idx")

    def __init__(self, device: DRAMDevice, idx: int) -> None:
        self._device = device
        self._idx = idx

    @property
    def open_row(self) -> int | None:
        row = self._device._open_row[self._idx]
        return None if row < 0 else row

    @property
    def ready_at(self) -> int:
        return self._device._ready_at[self._idx]

    @property
    def activations(self) -> int:
        return self._device._activations[self._idx]

    @property
    def precharges(self) -> int:
        return self._device._precharges[self._idx]

    @property
    def refreshes(self) -> int:
        return self._device._refreshes[self._idx]

    @property
    def row_buffer(self) -> RateStat:
        """Snapshot of the bank's row-buffer counters (copy, not live)."""
        return RateStat(
            hits=self._device._rb_hits[self._idx],
            misses=self._device._rb_misses[self._idx],
        )


class _ChannelView:
    """Read-only view of one channel's slice of the flat kernel state."""

    __slots__ = ("_device", "_channel")

    def __init__(self, device: DRAMDevice, channel: int) -> None:
        self._device = device
        self._channel = channel

    @property
    def banks(self) -> list[_BankView]:
        base = self._channel * self._device._nbk
        return [_BankView(self._device, base + b) for b in range(self._device._nbk)]

    @property
    def num_banks(self) -> int:
        return self._device._nbk

    @property
    def bus_free_at(self) -> int:
        return self._device._bus_free[self._channel]

    @property
    def bus_busy_cycles(self) -> int:
        return self._device._bus_busy[self._channel]

    def row_buffer_hit_rate(self) -> float:
        device = self._device
        base = self._channel * device._nbk
        hits = sum(device._rb_hits[base : base + device._nbk])
        misses = sum(device._rb_misses[base : base + device._nbk])
        total = hits + misses
        return hits / total if total else 0.0


def _ceil_pow2(value: int) -> int:
    """Smallest power of two >= value (for non-power-of-two channel counts)."""
    return 1 << (value - 1).bit_length()
