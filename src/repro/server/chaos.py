"""Chaos harness: deterministic fault injection for the daemon.

Two independent tools, both off unless explicitly armed, both fully
deterministic (no randomness — the determinism lint and reproducible
failures demand scripted chaos, not dice):

**Disk chaos** (``REPRO_CHAOS``). The grid store routes its durable
writes through :func:`take_fault`; setting the environment variable to
a JSON plan makes selected operations misbehave::

    REPRO_CHAOS='{"journal": {"action": "enospc", "times": 1}}'
    REPRO_CHAOS='{"result": {"action": "torn"}}'

Operations are ``journal`` (the request journal) and ``result`` (the
final result file). Actions:

* ``enospc`` — the write raises ``OSError(ENOSPC)`` (disk full); the
  store degrades to non-persistent operation for that write and counts
  it, the request itself still completes correctly;
* ``torn`` — the write bypasses the tmp+fsync+rename discipline and
  leaves a *truncated* file at the final path, simulating a crash
  mid-write; recovery must detect and quarantine it, never trust it.

``times`` bounds how many writes misbehave (default: every one). The
plan is parsed once per distinct environment value, mirroring
``repro.harness.faults.active_plan``.

**Wire chaos** (:class:`ChaosProxy`). An asyncio TCP interposer the
chaos tests put between client and server to exercise transport
failure modes on an otherwise healthy daemon: delaying traffic,
dropping the connection after N payload bytes, flipping a byte inside
a frame, going half-open (silently swallowing server output while the
connection stays up), trickling request bytes one at a time
(slow-loris), and truncating a request mid-line. Every behaviour is a
scripted :class:`ProxyPlan` field.
"""

from __future__ import annotations

import asyncio
import errno
import json
import os
from dataclasses import dataclass, field

__all__ = [
    "CHAOS_ENV",
    "ChaosProxy",
    "ProxyPlan",
    "chaos_counters",
    "reset_chaos",
    "take_fault",
]

CHAOS_ENV = "REPRO_CHAOS"

_OPS = ("journal", "result")
_ACTIONS = ("enospc", "torn")

# Memoized parse of the last-seen env value, plus the mutable
# per-process countdowns ("times" budgets) derived from it.
_parsed: tuple[str, dict] | None = None
_remaining: dict[str, int] = {}
_counters: dict[str, int] = {}


def _plan() -> dict:
    """The active disk-chaos plan (memoized per distinct env value)."""
    global _parsed
    raw = os.environ.get(CHAOS_ENV, "").strip()
    if _parsed is not None and _parsed[0] == raw:
        return _parsed[1]
    plan: dict = {}
    if raw:
        try:
            data = json.loads(raw)
        except ValueError:
            data = None
        if isinstance(data, dict):
            for op, spec in data.items():
                if op not in _OPS or not isinstance(spec, dict):
                    continue
                action = spec.get("action")
                if action not in _ACTIONS:
                    continue
                times = spec.get("times", -1)
                if not isinstance(times, int) or isinstance(times, bool):
                    times = -1
                plan[op] = {"action": action, "times": times}
    _parsed = (raw, plan)
    _remaining.clear()
    for op, spec in plan.items():
        _remaining[op] = spec["times"]
    return plan


def take_fault(op: str) -> str | None:
    """Consume one injected fault for ``op`` (None when healthy)."""
    spec = _plan().get(op)
    if spec is None:
        return None
    left = _remaining.get(op, 0)
    if left == 0:
        return None
    if left > 0:
        _remaining[op] = left - 1
    _counters[op] = _counters.get(op, 0) + 1
    return spec["action"]


def chaos_counters() -> dict[str, int]:
    """How many faults each operation has consumed (for assertions)."""
    return dict(_counters)


def reset_chaos() -> None:
    """Forget memoized plan and counters (test isolation)."""
    global _parsed
    _parsed = None
    _remaining.clear()
    _counters.clear()


def raise_enospc(path: str) -> None:
    """The canonical injected disk-full error."""
    raise OSError(errno.ENOSPC, "injected chaos: no space left on device", path)


# ----------------------------------------------------------------------
# wire chaos: the TCP interposer
# ----------------------------------------------------------------------
@dataclass
class ProxyPlan:
    """Scripted misbehaviour of one :class:`ChaosProxy`.

    Byte offsets count *payload* bytes in the affected direction since
    the connection opened; ``-1`` disables a behaviour.
    """

    #: Sleep this long before forwarding each chunk (either direction).
    delay_s: float = 0.0
    #: server->client: hard-close both sides after forwarding N bytes.
    drop_after_bytes: int = -1
    #: server->client: XOR 0xFF into the payload byte at offset N.
    garble_at: int = -1
    #: server->client: silently stop forwarding after N bytes while the
    #: connection stays open (half-open peer; client must time out).
    half_open_after_bytes: int = -1
    #: client->server: forward one byte at a time (slow-loris).
    trickle: bool = False
    #: client->server: forward only the first N bytes, then close the
    #: upstream write side (truncated frame arrives at the server).
    truncate_request_at: int = -1
    #: Apply the behaviours above only to the first N connections; later
    #: ones pass through clean (-1: chaos for every connection). This is
    #: how reconnect tests script "fail once, then heal".
    only_first_connections: int = -1


@dataclass
class ProxyStats:
    connections: int = 0
    to_server_bytes: int = 0
    to_client_bytes: int = 0
    dropped: int = 0
    garbled: int = 0
    extra: dict = field(default_factory=dict)


class ChaosProxy:
    """TCP interposer applying a :class:`ProxyPlan` to each connection."""

    def __init__(
        self, upstream_host: str, upstream_port: int, plan: ProxyPlan | None = None
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan or ProxyPlan()
        self.stats = ProxyStats()
        self._server: asyncio.Server | None = None
        self._tasks: set[asyncio.Task] = set()

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    async def _handle(self, client_reader, client_writer) -> None:
        self.stats.connections += 1
        plan = self.plan
        if (
            plan.only_first_connections >= 0
            and self.stats.connections > plan.only_first_connections
        ):
            plan = ProxyPlan()  # healed: clean pass-through
        try:
            server_reader, server_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            client_writer.close()
            return
        up = asyncio.create_task(
            self._pump_to_server(client_reader, server_writer, plan)
        )
        down = asyncio.create_task(
            self._pump_to_client(server_reader, client_writer, server_writer, plan)
        )
        self._tasks.update((up, down))
        up.add_done_callback(self._tasks.discard)
        down.add_done_callback(self._tasks.discard)

    async def _pump_to_server(self, client_reader, server_writer, plan) -> None:
        sent = 0
        try:
            while True:
                chunk = await client_reader.read(4096)
                if not chunk:
                    break
                if plan.delay_s:
                    await asyncio.sleep(plan.delay_s)
                if plan.truncate_request_at >= 0:
                    budget = plan.truncate_request_at - sent
                    if budget <= 0:
                        break
                    chunk = chunk[:budget]
                if plan.trickle:
                    for i in range(len(chunk)):
                        server_writer.write(chunk[i : i + 1])
                        await server_writer.drain()
                        if plan.delay_s:
                            await asyncio.sleep(plan.delay_s)
                else:
                    server_writer.write(chunk)
                    await server_writer.drain()
                sent += len(chunk)
                self.stats.to_server_bytes += len(chunk)
                if plan.truncate_request_at >= 0 and sent >= plan.truncate_request_at:
                    break
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            try:
                server_writer.close()
            except Exception:
                pass

    async def _pump_to_client(
        self, server_reader, client_writer, server_writer, plan
    ) -> None:
        sent = 0
        try:
            while True:
                chunk = await server_reader.read(4096)
                if not chunk:
                    break
                if plan.delay_s:
                    await asyncio.sleep(plan.delay_s)
                if plan.half_open_after_bytes >= 0 and sent >= plan.half_open_after_bytes:
                    # Swallow everything; never close. The client sees
                    # a connection that is up but says nothing.
                    continue
                if plan.garble_at >= 0 and sent <= plan.garble_at < sent + len(chunk):
                    offset = plan.garble_at - sent
                    chunk = (
                        chunk[:offset]
                        + bytes([chunk[offset] ^ 0xFF])
                        + chunk[offset + 1 :]
                    )
                    self.stats.garbled += 1
                if plan.drop_after_bytes >= 0 and sent + len(chunk) > plan.drop_after_bytes:
                    chunk = chunk[: max(0, plan.drop_after_bytes - sent)]
                    if chunk:
                        client_writer.write(chunk)
                        await client_writer.drain()
                        self.stats.to_client_bytes += len(chunk)
                    self.stats.dropped += 1
                    client_writer.close()
                    server_writer.close()
                    break
                client_writer.write(chunk)
                await client_writer.drain()
                sent += len(chunk)
                self.stats.to_client_bytes += len(chunk)
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            if plan.half_open_after_bytes < 0:
                try:
                    client_writer.close()
                except Exception:
                    pass
