"""Figure 5: fraction of cache hits by MRU position (8-way, 8-core).

Paper: on average more than 94% of hits land on the top-2 MRU ways,
justifying a 2-entry-per-set way locator.
"""

from conftest import EIGHT_MIXES

from repro.harness.experiments import fig5_mru_hits


def test_fig5_mru_hits(benchmark, report, eight_setup):
    rows = benchmark.pedantic(
        lambda: fig5_mru_hits(setup=eight_setup, mix_names=EIGHT_MIXES),
        rounds=1,
        iterations=1,
    )
    report(
        rows,
        title="Figure 5: hits by MRU position (8-way)",
        columns=["mix", "mru0", "mru1", "mru2", "mru3", "top2"],
    )
    mean = rows[-1]
    assert mean["mix"] == "mean"
    # Strong MRU concentration; the paper reports >94%, we require the
    # same qualitative dominance of the top-2 positions.
    assert mean["top2"] > 0.80
    assert mean["mru0"] > mean["mru1"] > mean["mru3"]
