"""The one place requests are defaulted, validated and executed.

Every entry point — ``repro run``/``repro bench`` on the command line,
the ``repro serve`` daemon, library callers — goes through this module,
so backend/scheme/mix/experiment resolution, parameter validation and
the legacy-environment deprecation shim live exactly once:

* :func:`sim_request` / :func:`grid_request` build validated request
  objects (rejecting bad ones with :class:`~repro.api.errors.RequestError`,
  which the CLI maps to exit code 2);
* :func:`run_sim` / :func:`run_grid` execute them on the harness,
  returning wire-ready results;
* :func:`stats_result` snapshots live telemetry (the ``stats``
  protocol verb).

Legacy configuration shim: ``REPRO_BACKEND`` / ``REPRO_JOBS`` set in
the environment *without* the corresponding request field still work —
the constructors absorb them into the request object and emit a
one-line :class:`DeprecationWarning` (migration notes in
``docs/development.md``). During execution the request is authoritative:
``run_grid`` scopes the environment to the request's values (so worker
processes inherit them) and restores it afterwards — the facade never
leaks configuration into the calling process.
"""

from __future__ import annotations

import os
import time
import warnings
from contextlib import ExitStack, contextmanager

from repro.api import catalog
from repro.api.errors import ERR_DEADLINE, RequestError
from repro.api.types import (
    ApiError,
    DseRequest,
    DseResult,
    GridRequest,
    GridResult,
    HealthResult,
    ProgressEvent,
    SimRequest,
    SimResult,
    StatsResult,
)

__all__ = [
    "api_error",
    "dse_request",
    "grid_request",
    "grid_setup",
    "health_result",
    "progress_event",
    "run_dse",
    "run_grid",
    "run_sim",
    "sim_request",
    "stats_result",
    "validate_dse",
    "validate_grid",
    "validate_sim",
]

_VALID_CORES = (4, 8, 16)


# ----------------------------------------------------------------------
# construction (defaulting + legacy environment shim)
# ----------------------------------------------------------------------
def _legacy_env(name: str, what: str) -> str | None:
    """Absorb a legacy env-only knob into the request, with a warning."""
    value = os.environ.get(name, "").strip()
    if not value:
        return None
    warnings.warn(
        f"configuring {what} through {name} alone is deprecated; set it on "
        "the repro.api request (or the CLI flag) — see docs/development.md",
        DeprecationWarning,
        stacklevel=3,
    )
    return value


def _resolve_backend(backend: str | None) -> str:
    if backend:
        return backend
    return _legacy_env("REPRO_BACKEND", "the drive backend") or "scalar"


def _resolve_jobs(jobs: int | str | None) -> int:
    if jobs is None:
        jobs = _legacy_env("REPRO_JOBS", "the grid worker count")
        if jobs is None:
            return 1
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            return 0
        try:
            jobs = int(jobs)
        except ValueError:
            raise RequestError(f"jobs must be a number or 'auto' (got {jobs!r})")
    return jobs


def sim_request(
    scheme: str,
    mix: str,
    *,
    cores: int = 4,
    accesses_per_core: int = 20_000,
    seed: int = 1,
    scale: int = 16,
    backend: str | None = None,
    window: int = 16,
    warmup_fraction: float = 0.5,
    deadline_s: float = 0.0,
) -> SimRequest:
    """A validated :class:`SimRequest` (the only sanctioned constructor)."""
    request = SimRequest(
        scheme=scheme,
        mix=mix,
        cores=cores,
        accesses_per_core=accesses_per_core,
        seed=seed,
        scale=scale,
        backend=_resolve_backend(backend),
        window=window,
        warmup_fraction=warmup_fraction,
        deadline_s=deadline_s,
    )
    validate_sim(request)
    return request


def grid_request(
    experiment: str,
    *,
    mixes=(),
    cores: int | None = None,
    accesses_per_core: int = 20_000,
    seed: int = 1,
    scale: int = 16,
    backend: str | None = None,
    jobs: int | str | None = None,
    deadline_s: float = 0.0,
) -> GridRequest:
    """A validated :class:`GridRequest` (the only sanctioned constructor)."""
    request = GridRequest(
        experiment=experiment,
        mixes=tuple(mixes or ()),
        cores=cores or 0,
        accesses_per_core=accesses_per_core,
        seed=seed,
        scale=scale,
        backend=_resolve_backend(backend),
        jobs=_resolve_jobs(jobs),
        deadline_s=deadline_s,
    )
    validate_grid(request)
    return request


def dse_request(
    *,
    mixes=(),
    cores: int = 4,
    accesses_per_core: int = 20_000,
    seed: int = 1,
    scale: int = 16,
    backend: str | None = None,
    jobs: int | str | None = None,
    sample_rate: float = 1.0,
    max_frontier: int = 8,
    deadline_s: float = 0.0,
) -> DseRequest:
    """A validated :class:`DseRequest` (the only sanctioned constructor)."""
    request = DseRequest(
        mixes=tuple(mixes or ()),
        cores=cores,
        accesses_per_core=accesses_per_core,
        seed=seed,
        scale=scale,
        backend=_resolve_backend(backend),
        jobs=_resolve_jobs(jobs),
        sample_rate=sample_rate,
        max_frontier=max_frontier,
        deadline_s=deadline_s,
    )
    validate_dse(request)
    return request


# ----------------------------------------------------------------------
# validation (shared by constructors, server decode path and the CLI)
# ----------------------------------------------------------------------
def _check_backend(backend: str) -> None:
    from repro.harness.backends import (
        BackendUnavailableError,
        UnknownBackendError,
        require_backend,
    )

    try:
        require_backend(backend)
    except (UnknownBackendError, BackendUnavailableError) as exc:
        raise RequestError(str(exc)) from None


def _check_common(request) -> None:
    if request.accesses_per_core <= 0:
        raise RequestError(
            f"accesses_per_core must be positive (got {request.accesses_per_core})"
        )
    if request.scale < 1:
        raise RequestError(f"scale must be >= 1 (got {request.scale})")
    if request.deadline_s < 0:
        raise RequestError(
            f"deadline_s must be >= 0 (got {request.deadline_s}); "
            "0 means no deadline"
        )
    _check_backend(request.backend)


def validate_sim(request: SimRequest) -> None:
    """Reject a bad :class:`SimRequest` before any simulation starts."""
    from repro.harness.schemes import UnknownSchemeError, get_scheme
    from repro.workloads.mixes import mixes_for_cores

    try:
        get_scheme(request.scheme)
    except UnknownSchemeError as exc:
        # The exception text already lists every registered scheme —
        # the same catalog `repro list-schemes` prints.
        raise RequestError(
            f"{exc} (see `python -m repro list-schemes`)"
        ) from None
    if request.cores not in _VALID_CORES:
        raise RequestError(f"cores must be 4, 8 or 16 (got {request.cores})")
    if request.mix not in mixes_for_cores(request.cores):
        raise RequestError(
            f"unknown mix {request.mix!r} for {request.cores} cores"
        )
    _check_common(request)
    if request.window <= 0:
        raise RequestError(f"window must be positive (got {request.window})")
    if not 0.0 <= request.warmup_fraction < 1.0:
        raise RequestError(
            f"warmup_fraction must be in [0, 1) (got {request.warmup_fraction})"
        )


def validate_grid(request: GridRequest) -> None:
    """Reject a bad :class:`GridRequest` before any simulation starts."""
    from repro.workloads.mixes import mixes_for_cores

    try:
        spec = catalog.get_experiment(request.experiment)
    except KeyError as exc:
        raise RequestError(str(exc).strip("'\"")) from None
    if request.cores and request.cores not in _VALID_CORES:
        raise RequestError(f"cores must be 4, 8 or 16 (got {request.cores})")
    if request.jobs < 0:
        raise RequestError(f"jobs must be >= 0 (got {request.jobs})")
    _check_common(request)
    if request.mixes:
        cores = request.cores or spec.default_cores
        known = mixes_for_cores(cores)
        unknown = [m for m in request.mixes if m not in known]
        if unknown:
            raise RequestError(
                f"unknown mix(es) {', '.join(unknown)} for {cores} cores "
                f"(known: {', '.join(sorted(known))})"
            )


def validate_dse(request: DseRequest) -> None:
    """Reject a bad :class:`DseRequest` before any estimation starts."""
    from repro.workloads.mixes import mixes_for_cores

    if request.cores not in _VALID_CORES:
        raise RequestError(f"cores must be 4, 8 or 16 (got {request.cores})")
    if request.jobs < 0:
        raise RequestError(f"jobs must be >= 0 (got {request.jobs})")
    if not 0.0 < request.sample_rate <= 1.0:
        raise RequestError(
            f"sample_rate must be in (0, 1] (got {request.sample_rate})"
        )
    if request.max_frontier < 1:
        raise RequestError(
            f"max_frontier must be >= 1 (got {request.max_frontier})"
        )
    _check_common(request)
    if request.mixes:
        known = mixes_for_cores(request.cores)
        unknown = [m for m in request.mixes if m not in known]
        if unknown:
            raise RequestError(
                f"unknown mix(es) {', '.join(unknown)} for "
                f"{request.cores} cores (known: {', '.join(sorted(known))})"
            )


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
@contextmanager
def _scoped_env(**values: str):
    """Set env knobs for the duration of one request, then restore.

    Worker processes and nested drives resolve configuration from the
    environment; scoping it to the request keeps the facade free of
    permanent process-state mutation (unlike the pre-API CLI, which
    leaked ``REPRO_JOBS``/``REPRO_BACKEND`` into the process).
    """
    saved = {name: os.environ.get(name) for name in values}
    os.environ.update(values)
    try:
        yield
    finally:
        for name, previous in saved.items():
            if previous is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = previous


def run_sim(request: SimRequest) -> SimResult:
    """Execute one validated simulation request to completion.

    ``deadline_s > 0`` bounds the wall-clock budget: on the main thread
    the SIGALRM cell timeout interrupts an overrunning simulation; on
    worker threads (the server pool) the daemon enforces the budget by
    abandoning the wait instead. Either way the caller sees a typed
    ``deadline_exceeded`` :class:`~repro.api.errors.RequestError`.
    """
    from repro.harness import faults
    from repro.harness.runner import ExperimentSetup, run_scheme_on_mix

    validate_sim(request)
    setup = ExperimentSetup(
        num_cores=request.cores,
        scale=request.scale,
        accesses_per_core=request.accesses_per_core,
        seed=request.seed,
    )
    start = time.perf_counter()
    try:
        with faults.cell_timeout(request.deadline_s or None):
            result = run_scheme_on_mix(
                request.scheme,
                request.mix,
                setup=setup,
                window=request.window,
                warmup_fraction=request.warmup_fraction,
                backend=request.backend,
            )
    except faults.CellTimeoutError:
        raise RequestError(
            f"deadline of {request.deadline_s:g}s exceeded before the "
            "simulation finished",
            code=ERR_DEADLINE,
        ) from None
    return SimResult(
        scheme=request.scheme,
        mix=request.mix,
        cores=request.cores,
        seed=request.seed,
        backend=result.backend,
        records=result.accesses,
        end_time=result.end_time,
        stats=dict(result.stats),
        wall_s=round(time.perf_counter() - start, 6),
    )


def grid_setup(request: GridRequest):
    """The :class:`ExperimentSetup` a grid request runs under (or None)."""
    from repro.harness.runner import ExperimentSetup

    spec = catalog.get_experiment(request.experiment)
    if not spec.needs_setup:
        return None
    return ExperimentSetup(
        num_cores=request.cores or spec.default_cores,
        scale=request.scale,
        accesses_per_core=request.accesses_per_core,
        seed=request.seed,
        backend=request.backend,
    )


def run_grid(
    request: GridRequest,
    *,
    progress=None,
    checkpoint_path: str | None = None,
    resume: bool = False,
) -> GridResult:
    """Execute one validated experiment grid to completion.

    ``progress`` (optional) receives a :class:`ProgressEvent` per
    completed grid cell. ``checkpoint_path`` attaches the crash-safe
    cell checkpoint (``docs/robustness.md``); with ``resume=True``
    cells already recorded there are served instead of recomputed.

    Cell failures never propagate: they are collected, and a grid that
    completes with failures comes back with ``status="partial"`` and
    the structured failure records attached.
    """
    import repro.harness.experiments as experiments
    from repro.harness import checkpoint as checkpoint_module
    from repro.harness import faults, parallel
    from repro.obs import get_tracer

    validate_grid(request)
    spec = catalog.get_experiment(request.experiment)
    fn = getattr(experiments, spec.attr)
    setup = grid_setup(request)
    kwargs: dict = {}
    if setup is not None:
        kwargs["setup"] = setup
        if request.mixes and "mix_name" not in fn.__code__.co_varnames:
            kwargs["mix_names"] = list(request.mixes)

    tracer = get_tracer()
    start = time.perf_counter()
    resumed = 0
    try:
        with ExitStack() as stack:
            # The request's backend rides on the ExperimentSetup (every
            # cell resolves setup.backend); only the worker count still
            # travels via the environment, because pool sizing happens
            # before any cell exists.
            stack.enter_context(_scoped_env(REPRO_JOBS=str(request.jobs)))
            stack.enter_context(
                faults.deadline_scope(request.deadline_s or None)
            )
            collector = stack.enter_context(faults.collect_failures())
            ckpt = None
            if checkpoint_path:
                ckpt = stack.enter_context(
                    checkpoint_module.attach(checkpoint_path, resume=resume)
                )
            if progress is not None:
                stack.enter_context(
                    parallel.progress_scope(_cell_progress(progress))
                )
            with tracer.span("run", experiment=request.experiment) as span:
                rows = fn(**kwargs)
                if tracer.enabled:
                    span["rows"] = len(rows)
            if ckpt is not None:
                resumed = ckpt.hits
    except faults.DeadlineExceededError:
        # Cells finished before the budget ran out are checkpointed
        # (when a checkpoint is attached), so resubmitting the same
        # request resumes where this attempt stopped.
        raise RequestError(
            f"deadline of {request.deadline_s:g}s exceeded before the "
            "grid finished",
            code=ERR_DEADLINE,
        ) from None
    failures = tuple(collector.as_dicts())
    return GridResult(
        experiment=request.experiment,
        status="partial" if failures else "ok",
        rows=tuple(rows),
        failures=failures,
        resumed_cells=resumed,
        wall_s=round(time.perf_counter() - start, 6),
    )


def run_dse(
    request: DseRequest,
    *,
    progress=None,
    checkpoint_path: str | None = None,
    resume: bool = False,
) -> DseResult:
    """Execute one validated design-space exploration to completion.

    Same execution contract as :func:`run_grid`: per-cell progress
    events, optional crash-safe checkpoint (both the estimation pass
    and the timing cells checkpoint, so a killed exploration resumes),
    collected cell failures (``status="partial"``), and a typed
    ``deadline_exceeded`` error when ``deadline_s`` runs out.
    """
    from repro.harness import checkpoint as checkpoint_module
    from repro.harness import faults, parallel
    from repro.harness.runner import ExperimentSetup
    from repro.mrc.dse import run_design_space
    from repro.obs import get_tracer

    validate_dse(request)
    setup = ExperimentSetup(
        num_cores=request.cores,
        scale=request.scale,
        accesses_per_core=request.accesses_per_core,
        seed=request.seed,
        backend=request.backend,
    )
    tracer = get_tracer()
    start = time.perf_counter()
    resumed = 0
    try:
        with ExitStack() as stack:
            stack.enter_context(_scoped_env(REPRO_JOBS=str(request.jobs)))
            stack.enter_context(
                faults.deadline_scope(request.deadline_s or None)
            )
            collector = stack.enter_context(faults.collect_failures())
            ckpt = None
            if checkpoint_path:
                ckpt = stack.enter_context(
                    checkpoint_module.attach(checkpoint_path, resume=resume)
                )
            if progress is not None:
                stack.enter_context(
                    parallel.progress_scope(_cell_progress(progress))
                )
            with tracer.span("run", experiment="dse") as span:
                outcome = run_design_space(
                    setup=setup,
                    mix_names=list(request.mixes) or None,
                    sample_rate=request.sample_rate,
                    max_frontier=request.max_frontier,
                    jobs=request.jobs,
                )
                if tracer.enabled:
                    span["rows"] = len(outcome["rows"])
                    span["speedup"] = outcome["stats"]["speedup"]
            if ckpt is not None:
                resumed = ckpt.hits
    except faults.DeadlineExceededError:
        raise RequestError(
            f"deadline of {request.deadline_s:g}s exceeded before the "
            "exploration finished",
            code=ERR_DEADLINE,
        ) from None
    failures = tuple(collector.as_dicts())
    return DseResult(
        status="partial" if failures else "ok",
        rows=tuple(outcome["rows"]),
        winner=dict(outcome["winner"] or {}),
        stats=dict(outcome["stats"]),
        failures=failures,
        resumed_cells=resumed,
        wall_s=round(time.perf_counter() - start, 6),
    )


def _cell_progress(emit):
    """Adapt the grid engine's per-cell hook to ProgressEvent emission."""

    def hook(done: int, total: int, attrs: dict) -> None:
        detail = " ".join(f"{k}={v}" for k, v in attrs.items())
        emit(progress_event("cell", completed=done, total=total, detail=detail))

    return hook


def stats_result(server: dict | None = None) -> StatsResult:
    """Live telemetry snapshot (the ``stats`` protocol verb)."""
    from repro.obs import get_metrics
    from repro.workloads.trace_cache import cache_stats

    return StatsResult(
        metrics=dict(get_metrics().snapshot()),
        trace_cache=dict(cache_stats()),
        server=dict(server or {}),
    )


# ----------------------------------------------------------------------
# factories for the remaining wire types
# ----------------------------------------------------------------------
# The server and clients build events/errors through these, never by
# instantiating the dataclasses directly (the api-stability simlint
# rule enforces it), so any future defaulting has one home.
def progress_event(
    stage: str,
    *,
    request_id: str = "",
    completed: int = 0,
    total: int = 0,
    detail: str = "",
) -> ProgressEvent:
    return ProgressEvent(
        stage=stage,
        request_id=request_id,
        completed=completed,
        total=total,
        detail=detail,
    )


def api_error(code: str, message: str) -> ApiError:
    return ApiError(code=code, message=message)


def health_result(
    state: str,
    *,
    queued: int = 0,
    inflight: int = 0,
    connections: int = 0,
    detail: str = "",
) -> HealthResult:
    """The ``health`` verb's answer (``starting``/``serving``/``draining``)."""
    if state not in ("starting", "serving", "draining"):
        raise RequestError(f"unknown health state {state!r}")
    return HealthResult(
        state=state,
        queued=queued,
        inflight=inflight,
        connections=connections,
        detail=detail,
    )
