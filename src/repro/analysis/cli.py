"""``python -m repro lint`` — the simlint command-line front end.

Exit codes: 0 clean (or fully baselined), 1 new findings, 2 usage /
configuration errors. ``--update-baseline`` rewrites the committed
baseline from the current findings (the ratchet: run it only to shrink
the file or to adopt a deliberate, justified exception).

Incremental runs are the default: results are keyed by content hashes
under ``.simlint-cache/`` at the repo root, so an unchanged tree
replays instantly. ``--no-cache`` forces a cold run (CI runs both and
gates on the warm one being >=5x faster); ``--changed`` narrows the
scan to files git reports as modified — the fast pre-commit loop, with
the caveat that cross-file rules only see the changed subset, so CI
still runs the full tree.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    missing_file_entries,
    split_by_baseline,
)
from repro.analysis.cache import LintCache
from repro.analysis.config import load_config
from repro.analysis.engine import find_repo_root, run_lint
from repro.analysis.reporting import render_json, render_sarif, render_text
from repro.analysis.rules import all_rules

__all__ = ["main"]

EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _default_paths() -> list[Path]:
    import repro

    return [Path(repro.__file__).resolve().parent]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "whole-program invariant checker: determinism (syntactic and "
            "taint-flow), hot-path purity, fast/reference parity, scheme-"
            "registry completeness, stats-protocol stability, __slots__, "
            "async event-loop safety and fork safety "
            "(see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files/directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="A,B",
        help="comma-separated rule subset (default: all)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only files git reports as changed (fast pre-commit "
        "loop; cross-file rules see just the subset, CI runs the full "
        "tree)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file (default: simlint-baseline.json at the repo "
        "root, when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (CI uses this to assert the tree "
        "itself is clean)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0 "
        "(also prunes entries whose file was deleted)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache (cold run)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (default: .simlint-cache at the repo root)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for dataflow-facts extraction (default 1)",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print a rule's rationale plus a violating/clean example "
        "pair and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _usage_error(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return EXIT_USAGE


def _explain(name: str) -> int:
    try:
        rule = all_rules([name])[name]
    except KeyError as exc:
        return _usage_error(str(exc.args[0]))
    print(f"{rule.name} (v{rule.version}): {rule.description}")
    if rule.rationale:
        print()
        print(textwrap.fill(rule.rationale, width=72))
    if rule.example_bad:
        print("\nviolating example:")
        print(textwrap.indent(rule.example_bad.rstrip("\n"), "    "))
    if rule.example_good:
        print("\nclean example:")
        print(textwrap.indent(rule.example_good.rstrip("\n"), "    "))
    if not (rule.rationale or rule.example_bad):
        print("\n(no extended documentation recorded for this rule)")
    return 0


def _changed_files(root: Path) -> list[Path] | None:
    """Python files git sees as modified/added/untracked, or None on error.

    ``status --porcelain`` covers staged + unstaged + untracked in one
    pass; renames report the new side. Deleted files have nothing to
    lint and are skipped.
    """
    try:
        proc = subprocess.run(
            ["git", "-C", str(root), "status", "--porcelain"],
            capture_output=True, text=True, timeout=30, check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    changed: list[Path] = []
    for line in proc.stdout.splitlines():
        if len(line) < 4:
            continue
        status, rest = line[:2], line[3:].strip()
        if "D" in status:
            continue
        if " -> " in rest:
            rest = rest.split(" -> ")[-1]
        rest = rest.strip('"')
        if rest.endswith(".py"):
            candidate = root / rest
            if candidate.is_file():
                changed.append(candidate)
    return changed


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; redirect stdout to
        # devnull so the interpreter-exit flush does not traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: list[str] | None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for name, rule in sorted(all_rules().items()):
            print(f"  {name:24s} {rule.description}")
        return 0
    if args.explain:
        return _explain(args.explain)

    paths = [Path(p) for p in args.paths] or _default_paths()
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        return _usage_error(f"no such path(s): {', '.join(missing)}")

    root = find_repo_root(paths[0])
    config = load_config(root)
    rules = None
    if args.rules:
        names = [name.strip() for name in args.rules.split(",") if name.strip()]
        try:
            rules = all_rules(names)
        except KeyError as exc:
            return _usage_error(str(exc.args[0]))

    if args.changed:
        changed = _changed_files(root)
        if changed is None:
            return _usage_error("--changed requires a working `git` checkout")
        scope = [p.resolve() for p in paths]
        paths = [
            f for f in changed
            if any(f == s or s in f.parents for s in scope)
        ]
        if not paths:
            print("simlint: no changed Python files in scope")
            return 0

    if args.jobs < 1:
        return _usage_error("--jobs must be >= 1")
    cache = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir) if args.cache_dir \
            else root / ".simlint-cache"
        cache = LintCache(cache_dir)

    started = time.perf_counter()
    result = run_lint(
        paths, config=config, root=root, rules=rules,
        cache=cache, jobs=args.jobs,
    )
    elapsed = time.perf_counter() - started
    # perfbench-convention timing line, on stderr so json/sarif stdout
    # stays machine-parseable; CI greps it for the warm>=5x-cold gate.
    mode = "warm" if result.cache_hit else "cold"
    print(
        f"[perfbench] simlint.run mode={mode} files={result.files_scanned} "
        f"facts_reused={result.facts_reused} wall_s={elapsed:.3f}",
        file=sys.stderr,
    )

    baseline = Baseline()
    baseline_path = Path(args.baseline) if args.baseline else root / config.baseline_name
    if args.update_baseline:
        pruned = 0
        if baseline_path.is_file():
            try:
                pruned = len(
                    missing_file_entries(Baseline.load(baseline_path), root)
                )
            except BaselineError:
                pass
        Baseline.from_violations(result.violations).write(baseline_path)
        print(
            f"simlint: wrote {len(result.violations)} entr"
            f"{'y' if len(result.violations) == 1 else 'ies'} to {baseline_path}"
            + (f" (pruned {pruned} deleted-file entr"
               f"{'y' if pruned == 1 else 'ies'})" if pruned else "")
        )
        return 0
    if not args.no_baseline and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            return _usage_error(str(exc))

    new, tolerated, stale = split_by_baseline(result.violations, baseline)
    for entry in missing_file_entries(baseline, root):
        print(
            f"simlint: baseline entry for deleted file {entry['path']} "
            f"(rule {entry['rule']}) can never match again — prune with "
            "--update-baseline",
            file=sys.stderr,
        )
    renderers = {"json": render_json, "sarif": render_sarif, "text": render_text}
    print(
        renderers[args.format](
            result, new=new, tolerated=tolerated, stale_baseline_entries=stale
        )
    )
    return EXIT_FINDINGS if new else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
