"""Trace materialization cache: identity, memoization and disk layer."""

import numpy as np
import pytest

from repro.workloads import trace_cache
from repro.workloads.trace import MultiProgramTrace
from repro.workloads.mixes import get_mix

MIX = "Q1"
ACCESSES = 800


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Each test gets an empty memory layer and a private disk directory."""
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "traces"))
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    trace_cache.clear_memory_cache()
    yield
    trace_cache.clear_memory_cache()


def _materialize_direct():
    return MultiProgramTrace(
        get_mix(MIX), accesses_per_core=ACCESSES, seed=1
    ).materialize()


def test_materialize_matches_record_iteration():
    """The vectorized merge equals the per-record heap merge, in order."""
    trace = MultiProgramTrace(get_mix(MIX), accesses_per_core=ACCESSES, seed=1)
    merged = trace.materialize()
    records = list(trace)
    assert len(merged) == len(records)
    assert merged.addresses.tolist() == [r.address for r in records]
    assert merged.is_write.tolist() == [r.is_write for r in records]
    assert merged.icount.tolist() == [r.icount for r in records]


def test_cached_arrays_byte_identical_to_generation():
    chunk = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    direct = _materialize_direct()
    assert chunk.addresses.tobytes() == direct.addresses.tobytes()
    assert chunk.is_write.tobytes() == direct.is_write.tobytes()
    assert chunk.icount.tobytes() == direct.icount.tobytes()


def test_memory_hit_returns_identical_arrays():
    before = trace_cache.cache_stats()
    first = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    second = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    after = trace_cache.cache_stats()
    assert after["misses"] == before["misses"] + 1
    assert after["memory_hits"] == before["memory_hits"] + 1
    # Same underlying buffers — the hit shares, it does not regenerate.
    assert second.addresses is first.addresses
    assert second.addresses.tobytes() == first.addresses.tobytes()


def test_cached_arrays_are_read_only():
    chunk = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    with pytest.raises(ValueError):
        chunk.addresses[0] = 0


def test_disk_round_trip_byte_identical(tmp_path):
    first = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    trace_cache.clear_memory_cache()  # force the next lookup to the disk layer
    before = trace_cache.cache_stats()
    second = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    after = trace_cache.cache_stats()
    assert after["disk_hits"] == before["disk_hits"] + 1
    assert after["misses"] == before["misses"]
    assert second.addresses.tobytes() == first.addresses.tobytes()
    assert second.is_write.tobytes() == first.is_write.tobytes()
    assert second.icount.tobytes() == first.icount.tobytes()


def test_disk_layer_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    trace_cache.clear_memory_cache()
    before = trace_cache.cache_stats()
    trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    after = trace_cache.cache_stats()
    assert after["misses"] == before["misses"] + 1
    assert after["disk_hits"] == before["disk_hits"]


def test_key_distinguishes_every_parameter():
    base = dict(accesses_per_core=ACCESSES, seed=1)
    key = trace_cache.trace_key(MIX, **base)
    assert key != trace_cache.trace_key(MIX, accesses_per_core=ACCESSES + 1, seed=1)
    assert key != trace_cache.trace_key(MIX, accesses_per_core=ACCESSES, seed=2)
    assert key != trace_cache.trace_key(MIX, **base, footprint_scale=2.0)
    assert key != trace_cache.trace_key(MIX, **base, intensity_scale=0.5)
    assert key != trace_cache.trace_key("Q2", **base)
    # Deterministic: same parameters, same key (it is the on-disk stem).
    assert key == trace_cache.trace_key(MIX, **base)


def test_corrupt_disk_entry_regenerates(tmp_path):
    trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    directory = trace_cache.disk_cache_dir()
    key = trace_cache.trace_key(MIX, accesses_per_core=ACCESSES, seed=1)
    path = f"{directory}/{key}.npz"
    with open(path, "wb") as fh:
        fh.write(b"not an npz")
    trace_cache.clear_memory_cache()
    before = trace_cache.cache_stats()
    chunk = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    after = trace_cache.cache_stats()
    assert after["misses"] == before["misses"] + 1
    direct = _materialize_direct()
    assert chunk.addresses.tobytes() == direct.addresses.tobytes()
