"""RetryPolicy: deterministic backoff and transient-error classification."""

import pytest

from repro.api import facade
from repro.api.errors import ServiceError
from repro.api.retry import RetryPolicy, request_key
from repro.api.wire import WireError


def _service_error(code):
    return ServiceError(facade.api_error(code, "injected"))


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            ConnectionError("gone"),
            ConnectionResetError("reset"),
            TimeoutError("slow"),
            OSError(32, "broken pipe"),
            _service_error("overloaded"),
            _service_error("draining"),
        ],
    )
    def test_transient_failures_retry(self, exc):
        assert RetryPolicy().should_retry(exc)

    @pytest.mark.parametrize(
        "exc",
        [
            _service_error("bad-request"),
            _service_error("bad-schema"),
            _service_error("deadline_exceeded"),
            _service_error("internal"),
            WireError("garbled frame"),
            ValueError("nope"),
        ],
    )
    def test_request_properties_do_not_retry(self, exc):
        # A request the server *rejected* (or a frame the codec refused)
        # will fail identically on resubmit — retrying hides the bug.
        assert not RetryPolicy().should_retry(exc)


class TestBackoff:
    def test_delays_are_deterministic(self):
        policy = RetryPolicy()
        a = [policy.delay_s("k", n) for n in range(1, 6)]
        b = [policy.delay_s("k", n) for n in range(1, 6)]
        assert a == b

    def test_delays_grow_exponentially_until_cap(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_cap_s=0.5)
        delays = [policy.delay_s("k", n) for n in range(1, 8)]
        # Base doubles every attempt (jitter only adds < 1x on top)...
        assert delays[0] < delays[2] < delays[4]
        # ...and the cap bounds the tail.
        assert all(d <= 0.5 for d in delays)
        assert delays[-1] == 0.5

    def test_different_keys_jitter_differently(self):
        policy = RetryPolicy()
        assert policy.delay_s("key-one", 1) != policy.delay_s("key-two", 1)


class TestRequestKey:
    def test_equal_requests_share_a_key(self):
        r1 = facade.sim_request("alloy", "Q1", accesses_per_core=500)
        r2 = facade.sim_request("alloy", "Q1", accesses_per_core=500)
        assert request_key("sim", r1) == request_key("sim", r2)

    def test_key_differs_by_request_and_verb(self):
        r1 = facade.sim_request("alloy", "Q1", accesses_per_core=500)
        r2 = facade.sim_request("alloy", "Q1", accesses_per_core=501)
        assert request_key("sim", r1) != request_key("sim", r2)
        assert request_key("ping", None) == "ping"
