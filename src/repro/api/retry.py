"""Client-side retry policy: bounded, deterministic, resumable.

Both service clients accept an optional :class:`RetryPolicy`. With one
attached, a request that fails for a *transient* reason — the TCP
connection dropped mid-stream, a read timed out against a half-open
peer, or the server answered with a retryable error code
(``overloaded``, ``draining``) — is resubmitted after an exponential
backoff, reconnecting first when the transport died.

Resubmission is safe by construction, not by hope:

* simulations are seeded and deterministic — re-running one yields the
  identical result;
* grids are content-addressed server-side (``grid_key`` over the
  canonical wire JSON), so a resubmitted grid *joins* the in-flight
  run or *resumes* its journaled checkpoint instead of recomputing,
  and the rows that come back are byte-identical to what the first
  attempt would have produced.

Backoff jitter is a pure function of ``(request key, attempt)`` via
SHA-256 — the same derandomized-jitter idiom as
``repro.harness.faults.RetryPolicy`` — so two reruns of a test schedule
identical sleeps (the project's determinism lint bans wall-clock and
unseeded randomness).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.api.errors import RETRYABLE_CODES, ServiceError

__all__ = ["RetryPolicy", "request_key"]


def request_key(verb: str, request) -> str:
    """A stable per-request key for deterministic backoff jitter."""
    if request is None:
        return verb
    # Local import: wire depends on types only; retry stays leaf-light.
    from repro.api.wire import dumps_strict, to_wire

    return f"{verb}:{dumps_strict(to_wire(request))}"


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How a client retries transient failures.

    ``attempts`` is the *total* number of tries (first one included).
    Delay before retry ``n`` (1-based) is
    ``backoff_s * 2**(n-1) * (1 + jitter)`` capped at ``backoff_cap_s``,
    with ``jitter`` in [0, 1) derived from the request key.
    """

    attempts: int = 4
    backoff_s: float = 0.05
    backoff_cap_s: float = 2.0

    def should_retry(self, exc: BaseException) -> bool:
        """Whether ``exc`` is transient (connection-level or retryable code)."""
        if isinstance(exc, ServiceError):
            return exc.code in RETRYABLE_CODES
        # ConnectionError and socket.timeout/TimeoutError are OSError
        # subclasses in modern Python; any OSError here is transport
        # trouble, never a property of the request itself.
        return isinstance(exc, (OSError, TimeoutError))

    def delay_s(self, key: str, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt`` (1-based)."""
        raw = self.backoff_s * (2 ** max(0, attempt - 1))
        return min(self.backoff_cap_s, raw * (1.0 + _jitter_fraction(key, attempt)))


def _jitter_fraction(key: str, attempt: int) -> float:
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 2**32
