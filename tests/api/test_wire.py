"""Wire codec: property-based round trips and strict decode failures.

Every api dataclass must survive ``to_wire`` -> JSON text -> ``from_wire``
bit-identically (tuples revived, numbers exact), and the decoder must
reject anything it does not fully understand — unknown types, version
skew, unexpected or missing fields."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.types import (
    API_SCHEMA,
    API_SCHEMA_MIN,
    ApiError,
    DseRequest,
    DseResult,
    GridRequest,
    GridResult,
    HealthResult,
    ProgressEvent,
    SimRequest,
    SimResult,
    StatsResult,
)
from repro.api.wire import (
    WIRE_TYPES,
    WireError,
    decode_line,
    dumps_strict,
    encode_line,
    from_wire,
    loads_strict,
    to_wire,
)

# JSON-representable scalars whose round trip is exact.
_scalars = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=16),
    st.booleans(),
    st.none(),
)
# Stats-style payload dicts; sequence values follow the repo-wide
# tuple convention (the codec revives JSON arrays back into tuples).
_values = st.one_of(
    _scalars,
    st.lists(_scalars, max_size=3).map(tuple),
)
_dicts = st.dictionaries(st.text(max_size=8), _values, max_size=4)
_names = st.text(min_size=1, max_size=12)

sim_requests = st.builds(
    SimRequest,
    scheme=_names,
    mix=_names,
    cores=st.integers(0, 64),
    accesses_per_core=st.integers(-10, 10**6),
    seed=st.integers(-(2**31), 2**31),
    scale=st.integers(0, 64),
    backend=_names,
    window=st.integers(0, 256),
    warmup_fraction=st.floats(0, 1, allow_nan=False),
    deadline_s=st.floats(0, 10**6, allow_nan=False),
)
grid_requests = st.builds(
    GridRequest,
    experiment=_names,
    mixes=st.lists(_names, max_size=4).map(tuple),
    cores=st.integers(0, 64),
    accesses_per_core=st.integers(-10, 10**6),
    seed=st.integers(-(2**31), 2**31),
    scale=st.integers(0, 64),
    backend=_names,
    jobs=st.integers(0, 64),
    deadline_s=st.floats(0, 10**6, allow_nan=False),
)
progress_events = st.builds(
    ProgressEvent,
    stage=_names,
    request_id=st.text(max_size=12),
    completed=st.integers(0, 10**6),
    total=st.integers(0, 10**6),
    detail=st.text(max_size=32),
)
sim_results = st.builds(
    SimResult,
    scheme=_names,
    mix=_names,
    cores=st.integers(0, 64),
    seed=st.integers(-(2**31), 2**31),
    backend=_names,
    records=st.integers(0, 10**9),
    end_time=st.integers(0, 10**12),
    stats=_dicts,
    wall_s=st.floats(0, 10**6, allow_nan=False),
)
grid_results = st.builds(
    GridResult,
    experiment=_names,
    status=st.sampled_from(["ok", "partial"]),
    rows=st.lists(_dicts, max_size=3).map(tuple),
    failures=st.lists(_dicts, max_size=2).map(tuple),
    resumed_cells=st.integers(0, 10**6),
    wall_s=st.floats(0, 10**6, allow_nan=False),
)
dse_requests = st.builds(
    DseRequest,
    mixes=st.lists(_names, max_size=4).map(tuple),
    cores=st.integers(0, 64),
    accesses_per_core=st.integers(-10, 10**6),
    seed=st.integers(-(2**31), 2**31),
    scale=st.integers(0, 64),
    backend=_names,
    jobs=st.integers(0, 64),
    sample_rate=st.floats(0, 1, allow_nan=False),
    max_frontier=st.integers(0, 64),
    deadline_s=st.floats(0, 10**6, allow_nan=False),
)
dse_results = st.builds(
    DseResult,
    status=st.sampled_from(["ok", "partial"]),
    rows=st.lists(_dicts, max_size=3).map(tuple),
    winner=_dicts,
    stats=_dicts,
    failures=st.lists(_dicts, max_size=2).map(tuple),
    resumed_cells=st.integers(0, 10**6),
    wall_s=st.floats(0, 10**6, allow_nan=False),
)
stats_results = st.builds(
    StatsResult, metrics=_dicts, trace_cache=_dicts, server=_dicts
)
api_errors = st.builds(
    ApiError, code=_names, message=st.text(max_size=64)
)
health_results = st.builds(
    HealthResult,
    state=st.sampled_from(["starting", "serving", "draining"]),
    queued=st.integers(0, 10**6),
    inflight=st.integers(0, 10**6),
    connections=st.integers(0, 10**6),
    detail=st.text(max_size=32),
)

any_wire_object = st.one_of(
    sim_requests,
    grid_requests,
    dse_requests,
    progress_events,
    sim_results,
    grid_results,
    dse_results,
    stats_results,
    api_errors,
    health_results,
)


@settings(max_examples=200, deadline=None)
@given(any_wire_object)
def test_every_type_round_trips_bit_identically(obj):
    assert from_wire(json.loads(json.dumps(to_wire(obj)))) == obj


@settings(max_examples=100, deadline=None)
@given(any_wire_object)
def test_line_framing_round_trips(obj):
    line = encode_line(obj)
    assert line.endswith(b"\n")
    assert b"\n" not in line[:-1]  # one object, one line
    assert decode_line(line) == obj


@settings(max_examples=50, deadline=None)
@given(grid_results)
def test_tuples_survive_decode(result):
    revived = decode_line(encode_line(result))
    assert isinstance(revived.rows, tuple)
    assert isinstance(revived.failures, tuple)
    for row in revived.rows:
        for value in row.values():
            assert not isinstance(value, list)


class TestStrictDecode:
    def test_unknown_type_rejected(self):
        with pytest.raises(WireError, match="unknown wire type"):
            from_wire({"type": "EvilRequest", "schema": API_SCHEMA})

    @pytest.mark.parametrize("schema", [0, API_SCHEMA + 1, "1", None])
    def test_other_schema_versions_rejected(self, schema):
        payload = {"type": "ApiError", "code": "x", "message": "y"}
        if schema is not None:
            payload["schema"] = schema
        with pytest.raises(WireError, match="schema"):
            from_wire(payload)

    def test_unexpected_field_rejected(self):
        payload = to_wire(ApiError(code="x", message="y"))
        payload["surprise"] = 1
        with pytest.raises(WireError, match="unexpected field"):
            from_wire(payload)

    def test_missing_required_field_rejected(self):
        payload = to_wire(ApiError(code="x", message="y"))
        del payload["message"]
        with pytest.raises(WireError, match="bad ApiError payload"):
            from_wire(payload)

    def test_non_object_rejected(self):
        with pytest.raises(WireError):
            from_wire(["SimRequest"])

    def test_non_json_line_rejected(self):
        with pytest.raises(WireError, match="not JSON"):
            decode_line(b"{nope\n")

    def test_every_public_type_is_registered(self):
        assert set(WIRE_TYPES) == {
            "SimRequest",
            "GridRequest",
            "DseRequest",
            "ProgressEvent",
            "SimResult",
            "GridResult",
            "DseResult",
            "StatsResult",
            "ApiError",
            "HealthResult",
        }

    def test_schema_field_travels_on_the_wire(self):
        payload = to_wire(ApiError(code="x", message="y"))
        assert payload["schema"] == API_SCHEMA


class TestSchemaSkew:
    """Old-schema payloads (>= API_SCHEMA_MIN) still decode."""

    def test_v1_sim_request_decodes_with_defaults(self):
        payload = to_wire(
            SimRequest(scheme="alloy", mix="Q1", backend="scalar")
        )
        del payload["deadline_s"]  # field did not exist in v1
        payload["schema"] = API_SCHEMA_MIN
        decoded = from_wire(payload)
        assert decoded.deadline_s == 0.0
        assert decoded.schema == API_SCHEMA  # normalized, not preserved

    def test_v1_grid_request_matches_v2_equivalent(self):
        # Content-addressing relies on this: an old client's request
        # and a new client's defaulted request are the same object.
        payload = to_wire(GridRequest(experiment="fig10", backend="scalar"))
        del payload["deadline_s"]
        payload["schema"] = API_SCHEMA_MIN
        assert from_wire(payload) == GridRequest(
            experiment="fig10", backend="scalar"
        )

    def test_below_min_schema_rejected(self):
        payload = to_wire(ApiError(code="x", message="y"))
        payload["schema"] = API_SCHEMA_MIN - 1
        with pytest.raises(WireError, match="schema"):
            from_wire(payload)


class TestNonFiniteFloats:
    """NaN/Infinity never cross the wire: rejected with a typed error.

    Standard JSON has no representation for them; rather than emit
    frames only Python's parser reads back, the codec fails loudly in
    both directions.
    """

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), float("-inf")]
    )
    def test_encode_rejects_non_finite_stats(self, value):
        result = StatsResult(metrics={"m": value}, trace_cache={}, server={})
        with pytest.raises(WireError, match="non-finite"):
            encode_line(result)

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), float("-inf")]
    )
    def test_encode_rejects_non_finite_nested_in_rows(self, value):
        result = GridResult(
            experiment="fig10", status="ok", rows=({"ipc": (1.0, value)},)
        )
        with pytest.raises(WireError, match="non-finite"):
            encode_line(result)

    @pytest.mark.parametrize("token", ["NaN", "Infinity", "-Infinity"])
    def test_decode_rejects_non_finite_literals(self, token):
        line = (
            '{"type":"ApiError","code":"x","message":"y",'
            f'"schema":{API_SCHEMA},"extra":{token}}}'
        )
        with pytest.raises(WireError, match="non-finite"):
            decode_line(line.encode())

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.sampled_from(["nan", "inf", "-inf"]),
    )
    def test_finite_pass_non_finite_fail(self, finite, bad):
        assert loads_strict(dumps_strict(finite)) == finite
        with pytest.raises(WireError):
            dumps_strict(float(bad))
