"""Clients for the ``repro serve`` daemon.

:class:`ServiceClient` is the blocking client (one request at a time
over one connection — what the CLI and scripts use);
:class:`AsyncServiceClient` multiplexes many concurrent requests over
one connection from asyncio code (what the fair-share tests use).

Both speak the envelope protocol of :mod:`repro.api.protocol` and
return the same typed objects the facade produces locally, so a caller
can swap ``facade.run_sim(req)`` for ``client.run_sim(req)`` without
touching anything downstream — results are byte-identical
(``scripts/serve_smoke.py`` asserts it in CI). Server-side rejections
surface as :class:`~repro.api.errors.ServiceError` carrying the typed
:class:`~repro.api.types.ApiError` envelope.

Resilience (``docs/robustness.md``): connecting is always bounded by
``connect_timeout`` (a daemon that never answers must not hang the
caller forever), and attaching a :class:`~repro.api.retry.RetryPolicy`
makes each verb survive dropped connections and retryable server
errors by reconnecting and resubmitting. Resubmitting is idempotent:
sims are deterministic, and grids are content-addressed server-side
(``grid_key``), so a retried grid joins or resumes the original run
and returns byte-identical rows.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import time

from repro.api.errors import ServiceError
from repro.api.protocol import parse_response_line, request_line
from repro.api.retry import RetryPolicy, request_key
from repro.api.types import (
    DseRequest,
    DseResult,
    GridRequest,
    GridResult,
    HealthResult,
    SimRequest,
    SimResult,
    StatsResult,
)
from repro.api.wire import WireError

__all__ = ["AsyncServiceClient", "ServiceClient"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7914

#: Bound on establishing the TCP connection. Finite by default: an
#: unreachable or wedged daemon should fail the caller in seconds, not
#: block forever (reads stay unbounded unless ``timeout`` is set —
#: grids legitimately run for minutes between protocol lines).
DEFAULT_CONNECT_TIMEOUT_S = 10.0


def _finish(kind: str, payload, expect: type):
    """Map a terminal protocol line to a return value or raised error."""
    if kind == "error":
        raise ServiceError(payload)
    if not isinstance(payload, expect):
        raise WireError(
            f"server answered with {type(payload).__name__}, "
            f"expected {expect.__name__}"
        )
    return payload


class ServiceClient:
    """Blocking connection to a ``repro serve`` daemon.

    Usable as a context manager::

        with ServiceClient(port=7914) as client:
            result = client.run_sim(request)

    With ``retry=RetryPolicy()``, a verb that dies mid-stream (killed
    server, dropped connection, read timeout) reconnects and resubmits
    the same request; see :mod:`repro.api.retry` for why the answer is
    unchanged by the retry.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float | None = None,
        connect_timeout: float | None = DEFAULT_CONNECT_TIMEOUT_S,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._connect_timeout = connect_timeout
        self._retry = retry
        self._ids = itertools.count(1)
        self._sock: socket.socket | None = None
        self._reader = None
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        # Connect bound and read bound are different budgets.
        self._sock.settimeout(self._timeout)
        self._reader = self._sock.makefile("rb")

    def close(self) -> None:
        if self._reader is not None:
            self._reader.close()
            self._reader = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- verbs ----------------------------------------------------------
    def run_sim(self, request: SimRequest, *, on_progress=None) -> SimResult:
        """Run one simulation on the server; blocks until its result."""
        return self._call("sim", request, SimResult, on_progress)

    def run_grid(self, request: GridRequest, *, on_progress=None) -> GridResult:
        """Run one experiment grid on the server; blocks until done."""
        return self._call("grid", request, GridResult, on_progress)

    def run_dse(self, request: DseRequest, *, on_progress=None) -> DseResult:
        """Run one design-space exploration on the server; blocks until done."""
        return self._call("dse", request, DseResult, on_progress)

    def stats(self) -> StatsResult:
        """The server's live telemetry snapshot."""
        return self._call("stats", None, StatsResult, None)

    def ping(self) -> bool:
        """True once the server answers (used to wait for startup)."""
        self._call("ping", None, StatsResult, None)
        return True

    def health(self) -> HealthResult:
        """Lifecycle state + queue depths (``starting|serving|draining``)."""
        return self._call("health", None, HealthResult, None)

    # -- plumbing -------------------------------------------------------
    def _call(self, verb, request, expect, on_progress):
        if self._retry is None:
            return self._attempt(verb, request, expect, on_progress)
        key = request_key(verb, request)
        for attempt in itertools.count(1):
            try:
                if self._sock is None:
                    self._connect()
                return self._attempt(verb, request, expect, on_progress)
            except (ServiceError, OSError, TimeoutError) as exc:
                if attempt >= self._retry.attempts or not self._retry.should_retry(exc):
                    raise
                if not isinstance(exc, ServiceError):
                    # Transport died: drop it so the next attempt
                    # reconnects. A retryable *server* answer keeps the
                    # (healthy) connection.
                    self.close()
                time.sleep(self._retry.delay_s(key, attempt))

    def _attempt(self, verb, request, expect, on_progress):
        request_id = f"c{next(self._ids)}"
        self._sock.sendall(request_line(request_id, verb, request))
        while True:
            line = self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            if not line.endswith(b"\n"):
                # EOF mid-line: a dropped connection truncated the
                # frame. That is a transport failure (retryable), not a
                # malformed frame from a healthy server.
                raise ConnectionError("connection dropped mid-frame")
            rid, kind, payload = parse_response_line(line)
            if rid != request_id:
                # Blocking client has one request in flight; anything
                # else is a connection-level error notice.
                if kind == "error":
                    raise ServiceError(payload)
                continue
            if kind == "event":
                if on_progress is not None:
                    on_progress(payload)
                continue
            return _finish(kind, payload, expect)


class AsyncServiceClient:
    """Asyncio connection multiplexing concurrent requests.

    Every in-flight request gets its own response queue keyed by
    envelope id; a single reader task dispatches lines to them, so
    interleaved server output cannot cross-contaminate requests.

    Use :meth:`connect` (or ``async with AsyncServiceClient.session()``)
    to open, then issue any number of overlapping awaitable verbs.
    With a :class:`~repro.api.retry.RetryPolicy`, concurrent requests
    that lose the connection race to reconnect exactly once (a lock and
    generation counter serialize it) and then each resubmit.
    """

    def __init__(self) -> None:
        self._host = DEFAULT_HOST
        self._port = DEFAULT_PORT
        self._connect_timeout = DEFAULT_CONNECT_TIMEOUT_S
        self._retry: RetryPolicy | None = None
        self._reader = None
        self._writer = None
        self._ids = itertools.count(1)
        self._pending: dict[str, asyncio.Queue] = {}
        self._reader_task = None
        self._conn_lock: asyncio.Lock | None = None
        self._generation = 0

    @classmethod
    async def connect(
        cls,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        connect_timeout: float | None = DEFAULT_CONNECT_TIMEOUT_S,
        retry: RetryPolicy | None = None,
    ) -> "AsyncServiceClient":
        client = cls()
        client._host = host
        client._port = port
        client._connect_timeout = connect_timeout
        client._retry = retry
        client._conn_lock = asyncio.Lock()
        await client._open()
        return client

    async def _open(self) -> None:
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self._host, self._port),
            self._connect_timeout,
        )
        self._reader_task = asyncio.create_task(self._pump())

    async def _teardown(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
            self._writer = None
        self._reader = None

    async def _reconnect(self, seen_generation: int) -> None:
        """Re-open the transport once, however many requests ask for it."""
        async with self._conn_lock:
            if self._generation != seen_generation:
                return  # a sibling request already reconnected
            await self._teardown()
            await self._open()
            self._generation += 1

    async def close(self) -> None:
        await self._teardown()

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- verbs ----------------------------------------------------------
    async def run_sim(self, request: SimRequest, *, on_progress=None) -> SimResult:
        return await self._call("sim", request, SimResult, on_progress)

    async def run_grid(
        self, request: GridRequest, *, on_progress=None
    ) -> GridResult:
        return await self._call("grid", request, GridResult, on_progress)

    async def run_dse(
        self, request: DseRequest, *, on_progress=None
    ) -> DseResult:
        return await self._call("dse", request, DseResult, on_progress)

    async def stats(self) -> StatsResult:
        return await self._call("stats", None, StatsResult, None)

    async def ping(self) -> bool:
        await self._call("ping", None, StatsResult, None)
        return True

    async def health(self) -> HealthResult:
        return await self._call("health", None, HealthResult, None)

    # -- plumbing -------------------------------------------------------
    async def _pump(self) -> None:
        """Reader task: route every server line to its request queue."""
        try:
            while True:
                line = await self._reader.readline()
                if not line or not line.endswith(b"\n"):
                    break  # EOF (possibly mid-frame): connection is gone
                try:
                    rid, kind, payload = parse_response_line(line)
                except WireError:
                    # A poisoned stream cannot be attributed to any one
                    # request; drop the connection so every pending
                    # request fails (and retries) uniformly.
                    break
                queue = self._pending.get(rid)
                if queue is not None:
                    queue.put_nowait((kind, payload))
        finally:
            for queue in self._pending.values():
                queue.put_nowait(("closed", None))

    async def _call(self, verb, request, expect, on_progress):
        if self._retry is None:
            return await self._attempt(verb, request, expect, on_progress)
        key = request_key(verb, request)
        for attempt in itertools.count(1):
            generation = self._generation
            try:
                return await self._attempt(verb, request, expect, on_progress)
            except (ServiceError, OSError, TimeoutError) as exc:
                if attempt >= self._retry.attempts or not self._retry.should_retry(exc):
                    raise
                await asyncio.sleep(self._retry.delay_s(key, attempt))
                if not isinstance(exc, ServiceError):
                    await self._reconnect(generation)

    async def _attempt(self, verb, request, expect, on_progress):
        request_id = f"a{next(self._ids)}"
        queue: asyncio.Queue = asyncio.Queue()
        self._pending[request_id] = queue
        try:
            if self._writer is None:
                raise ConnectionError("client is not connected")
            self._writer.write(request_line(request_id, verb, request))
            await self._writer.drain()
            while True:
                kind, payload = await queue.get()
                if kind == "closed":
                    raise ConnectionError("server closed the connection")
                if kind == "event":
                    if on_progress is not None:
                        on_progress(payload)
                    continue
                return _finish(kind, payload, expect)
        finally:
            self._pending.pop(request_id, None)
