"""Command-line front-end: thin adapters over the ``repro.api`` facade.

Examples::

    python -m repro run fig1 --mixes Q2 Q7 --accesses 20000
    python -m repro run fig7 --jobs auto --trace-out fig7.jsonl
    python -m repro run table3 --export out/table3.json
    python -m repro dse --mixes Q1 Q7 --sample-rate 0.5
    python -m repro serve --port 7914 --state-dir .repro-serve
    python -m repro list
    python -m repro list-schemes
    python -m repro bench --repeats 5

Every subcommand builds a typed request through :mod:`repro.api` and
executes it through the same facade the ``repro serve`` daemon uses, so
validation, defaulting and backend resolution happen in exactly one
place and a CLI run is byte-identical to the same request answered by a
warm server (``scripts/serve_smoke.py`` asserts this in CI).

The pre-subcommand invocation (``python -m repro fig1 ...``) keeps
working with a deprecation note; it forwards to ``repro run``. So does
configuring ``REPRO_JOBS``/``REPRO_BACKEND`` through the environment
alone — the facade absorbs them into the request with a one-line
DeprecationWarning (migration notes in docs/development.md).

Exit codes (shared by run/bench/serve and the perfbench gate — see
:mod:`repro.api.errors`): 0 success; 2 bad request/configuration (one
clean line on stderr, never a traceback); 3 grid completed but cells
permanently failed; 4 perf gate regression.

Fault tolerance (see docs/robustness.md): ``run`` always collects
per-cell failures instead of dying on the first one. A grid that ends
with failures still prints and exports every completed row, lists the
failed cells on stderr, records them in the manifest and exits with
code 3. ``--export`` keeps a crash-safe checkpoint beside the artifact;
``--resume <ckpt>`` skips cells the checkpoint already holds.
"""

from __future__ import annotations

import argparse
import sys

from repro import api
from repro.api.errors import EXIT_OK, EXIT_PARTIAL, EXIT_USAGE

#: Backwards-compatible aliases: scripts and tests import these from
#: here; the canonical definitions live in :mod:`repro.api`.
EXIT_CELL_FAILURES = EXIT_PARTIAL
_EXPERIMENTS: dict[str, tuple[str, bool, int, str]] = {
    spec.name: (spec.attr, spec.needs_setup, spec.default_cores, spec.description)
    for spec in api.experiment_catalog().values()
}

_SUBCOMMANDS = ("run", "dse", "list", "list-schemes", "bench", "lint", "serve")


def _shared_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        help="worker processes for grid cells (a number or 'auto')",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="drive engine: 'scalar' (default) or 'vectorized' "
        "(recorded in run manifests)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write observability JSONL events to FILE (enables per-cell "
        "progress on stderr; a .manifest.json lands next to it)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the Bi-Modal DRAM Cache paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment (figure/table id)")
    run.add_argument(
        "experiment", help="experiment id (see `python -m repro list`)"
    )
    run.add_argument("--mixes", nargs="*", default=None, help="mix subset")
    run.add_argument("--cores", type=int, default=None, help="4, 8 or 16")
    run.add_argument(
        "--accesses", type=int, default=20_000, help="accesses per core"
    )
    run.add_argument("--scale", type=int, default=16, help="capacity scale")
    run.add_argument(
        "--export", default=None, help="write rows to this .json or .csv path"
    )
    run.add_argument(
        "--chart",
        default=None,
        metavar="COLUMN",
        help="also render a bar chart of this numeric column",
    )
    run.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="record completed grid cells to this crash-safe JSONL file "
        "(defaults to <export>.ckpt.jsonl when --export is given)",
    )
    run.add_argument(
        "--resume",
        default=None,
        metavar="CKPT",
        help="resume from a checkpoint file: cells already recorded there "
        "are served from it, only the missing ones run",
    )
    run.add_argument(
        "--server",
        default=None,
        metavar="HOST:PORT",
        help="run on a warm `repro serve` daemon instead of locally "
        "(results are byte-identical; retries/reconnects transparently)",
    )
    run.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="bound on establishing the server connection (default 10)",
    )
    run.add_argument(
        "--deadline",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="wall-clock budget for the whole run; past it the request "
        "fails with the typed deadline_exceeded error (0 = none)",
    )
    _shared_flags(run)

    dse = sub.add_parser(
        "dse",
        help="MRC-guided design-space exploration (see docs/dse.md)",
    )
    dse.add_argument("--mixes", nargs="*", default=None, help="mix subset")
    dse.add_argument("--cores", type=int, default=4, help="4, 8 or 16")
    dse.add_argument(
        "--accesses", type=int, default=20_000, help="accesses per core"
    )
    dse.add_argument("--scale", type=int, default=16, help="capacity scale")
    dse.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        metavar="R",
        help="deterministic trace-sampling rate of the ghost pass, "
        "0 < R <= 1 (1.0 = every record; see docs/dse.md for error bounds)",
    )
    dse.add_argument(
        "--max-frontier",
        type=int,
        default=8,
        metavar="N",
        help="cap on Pareto-frontier points graduating to timing simulation",
    )
    dse.add_argument(
        "--export", default=None, help="write rows to this .json or .csv path"
    )
    dse.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="record completed timing cells to this crash-safe JSONL file",
    )
    dse.add_argument(
        "--resume",
        default=None,
        metavar="CKPT",
        help="resume timing cells from a checkpoint file",
    )
    dse.add_argument(
        "--server",
        default=None,
        metavar="HOST:PORT",
        help="run on a warm `repro serve` daemon instead of locally",
    )
    dse.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="bound on establishing the server connection (default 10)",
    )
    dse.add_argument(
        "--deadline",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="wall-clock budget for the whole exploration (0 = none)",
    )
    _shared_flags(dse)

    sub.add_parser("list", help="list experiment ids")
    sub.add_parser("list-schemes", help="list registered DRAM cache schemes")
    # `lint` is dispatched before parse_args so simlint owns its own
    # argument surface; this entry only makes it show up in --help.
    sub.add_parser(
        "lint",
        help="run simlint static analysis (see docs/static-analysis.md)",
        add_help=False,
    )

    serve = sub.add_parser(
        "serve",
        help="run the simulation service daemon (see docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 binds an ephemeral port, printed on startup)",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="persist grid journals/checkpoints here; a restarted server "
        "resumes unfinished grids from this directory",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=2,
        metavar="N",
        help="requests executing concurrently (admission semaphore)",
    )
    serve.add_argument(
        "--max-queued-per-client",
        type=int,
        default=8,
        metavar="N",
        help="per-client backlog bound; beyond it requests are rejected "
        "with the typed 'overloaded' error",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="graceful-drain budget after SIGTERM/SIGINT: in-flight work "
        "gets this long to finish (checkpointing as it goes) before the "
        "process force-exits (still status 0)",
    )

    bench = sub.add_parser(
        "bench", help="measure drive-loop throughput (records/sec)"
    )
    bench.add_argument("--scheme", default="bimodal")
    bench.add_argument("--mix", default="Q1")
    bench.add_argument("--cores", type=int, default=4)
    bench.add_argument("--accesses-per-core", type=int, default=15_000)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--modes",
        default="legacy,fast,traced",
        help="comma-separated subset of {legacy,fast,traced,mrc}",
    )
    bench.add_argument(
        "--output", default=None, help="append the entry to this JSON history"
    )
    _shared_flags(bench)

    return parser


def _usage_error(message: str) -> int:
    """One clean line on stderr, never a traceback."""
    print(f"error: {message}", file=sys.stderr)
    return EXIT_USAGE


def _configure_tracing(args: argparse.Namespace) -> None:
    if getattr(args, "trace_out", None):
        from repro.obs import configure

        configure(args.trace_out, propagate_env=True)


def _cmd_list() -> int:
    for spec in api.experiment_catalog().values():
        print(
            f"  {spec.name:14s} ({spec.default_cores}-core default)  "
            f"{spec.description}"
        )
    return EXIT_OK


def _cmd_list_schemes() -> int:
    # Same catalog the facade validator rejects unknown schemes against.
    from repro.harness.schemes import scheme_catalog

    for line in scheme_catalog():
        print(f"  {line}")
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.max_inflight < 1:
        return _usage_error(
            f"max-inflight must be >= 1 (got {args.max_inflight})"
        )
    if args.max_queued_per_client < 1:
        return _usage_error(
            f"max-queued-per-client must be >= 1 "
            f"(got {args.max_queued_per_client})"
        )
    if args.drain_timeout < 0:
        return _usage_error(
            f"drain-timeout must be >= 0 (got {args.drain_timeout})"
        )
    from repro.server import ServerConfig, serve_forever

    serve_forever(
        ServerConfig(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            max_queued_per_client=args.max_queued_per_client,
            state_dir=args.state_dir or "",
            drain_timeout_s=args.drain_timeout,
        )
    )
    return EXIT_OK


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness import perfbench

    try:
        request = api.sim_request(
            args.scheme,
            args.mix,
            cores=args.cores,
            accesses_per_core=args.accesses_per_core,
            seed=args.seed,
            backend=args.backend,
        )
    except api.RequestError as exc:
        return _usage_error(str(exc))
    _configure_tracing(args)
    forwarded = [
        "--scheme", request.scheme,
        "--mix", request.mix,
        "--cores", str(request.cores),
        "--accesses-per-core", str(request.accesses_per_core),
        "--repeats", str(args.repeats),
        "--modes", args.modes,
        "--backend", request.backend,
    ]
    if args.output:
        forwarded += ["--output", args.output]
    return perfbench.main(forwarded)


def _checkpoint_path(args: argparse.Namespace) -> str | None:
    """Where this run checkpoints: --resume > --checkpoint > <export>.ckpt."""
    if args.resume:
        return args.resume
    if args.checkpoint:
        return args.checkpoint
    if args.export:
        from repro.harness import checkpoint as checkpoint_module

        return checkpoint_module.default_path(args.export)
    return None


def _parse_hostport(value: str) -> tuple[str, int] | None:
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        return None
    try:
        return host, int(port)
    except ValueError:
        return None


def _cmd_run(args: argparse.Namespace, argv: list[str]) -> int:
    try:
        request = api.grid_request(
            args.experiment,
            mixes=args.mixes or (),
            cores=args.cores,
            accesses_per_core=args.accesses,
            seed=args.seed,
            scale=args.scale,
            backend=args.backend,
            jobs=args.jobs,
            deadline_s=args.deadline,
        )
    except api.RequestError as exc:
        return _usage_error(str(exc))
    _configure_tracing(args)
    ckpt_path = _checkpoint_path(args)
    try:
        if args.server:
            address = _parse_hostport(args.server)
            if address is None:
                return _usage_error(
                    f"--server needs HOST:PORT (got {args.server!r})"
                )
            if ckpt_path:
                print(
                    "[repro] --server runs checkpoint on the daemon "
                    "(its keyed state dir); local checkpoint flags ignored",
                    file=sys.stderr,
                )
            result = _run_on_server(args, address, request)
        else:
            result = api.run_grid(
                request,
                checkpoint_path=ckpt_path,
                resume=bool(args.resume),
            )
    except ValueError as exc:
        # Config-shaped errors (unknown scheme/mix, bad parameter) from
        # inside an experiment get a clean one-liner, not a traceback.
        return _usage_error(str(exc))
    except api.ServiceError as exc:
        return _usage_error(str(exc))
    except (OSError, TimeoutError) as exc:
        if args.server:
            return _usage_error(f"cannot reach server {args.server}: {exc}")
        raise
    if args.resume and result.resumed_cells:
        print(
            f"[repro] resumed {result.resumed_cells} cell(s) from {ckpt_path}",
            file=sys.stderr,
        )
    rows = list(result.rows)
    spec = api.get_experiment(request.experiment)
    from repro.harness.reporting import print_table

    print_table(rows, title=f"{request.experiment}: {spec.description}")
    if args.chart and rows:
        from repro.harness.figures import bar_chart

        label = next(iter(rows[0]))
        print()
        print(bar_chart(rows, label=label, value=args.chart))
    if args.export:
        if rows:
            from repro.harness.export import export_csv, export_json

            if args.export.endswith(".csv"):
                export_csv(rows, args.export)
            else:
                export_json(rows, args.export, experiment=request.experiment)
            print(f"\nwrote {args.export}")
        else:
            print(
                f"[repro] no completed rows; skipping export to {args.export}",
                file=sys.stderr,
            )
    _write_manifests(args, argv, api.grid_setup(request), list(result.failures))
    if result.failures:
        _print_failure_table(result.failures)
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_dse(args: argparse.Namespace, argv: list[str]) -> int:
    try:
        request = api.dse_request(
            mixes=args.mixes or (),
            cores=args.cores,
            accesses_per_core=args.accesses,
            seed=args.seed,
            scale=args.scale,
            backend=args.backend,
            jobs=args.jobs,
            sample_rate=args.sample_rate,
            max_frontier=args.max_frontier,
            deadline_s=args.deadline,
        )
    except api.RequestError as exc:
        return _usage_error(str(exc))
    _configure_tracing(args)
    ckpt_path = args.resume or args.checkpoint
    try:
        if args.server:
            address = _parse_hostport(args.server)
            if address is None:
                return _usage_error(
                    f"--server needs HOST:PORT (got {args.server!r})"
                )
            result = _run_on_server(
                args, address, request, verb="dse"
            )
        else:
            result = api.run_dse(
                request,
                checkpoint_path=ckpt_path,
                resume=bool(args.resume),
            )
    except ValueError as exc:
        return _usage_error(str(exc))
    except api.ServiceError as exc:
        return _usage_error(str(exc))
    except (OSError, TimeoutError) as exc:
        if args.server:
            return _usage_error(f"cannot reach server {args.server}: {exc}")
        raise
    rows = list(result.rows)
    from repro.harness.reporting import print_table

    print_table(rows, title="dse: MRC-guided design-space exploration")
    stats = dict(result.stats)
    if result.winner:
        point = dict(result.winner)
        print(
            f"\nwinner: {point.get('cache_mb')}MB/"
            f"{point.get('block_size')}B/{point.get('associativity')}w/"
            f"{point.get('policy')}  hit_rate={point.get('hit_rate'):.4f}"
        )
    print(
        f"cost: {stats.get('full_sims_equivalent', 0):g} full-sim "
        f"equivalents vs {stats.get('exhaustive_sims', 0)} exhaustive "
        f"({stats.get('full_sims_avoided', 0)} avoided, "
        f"{stats.get('speedup', 0):g}x)"
    )
    if args.export:
        if rows:
            from repro.harness.export import export_csv, export_json

            if args.export.endswith(".csv"):
                export_csv(rows, args.export)
            else:
                export_json(rows, args.export, experiment="dse")
            print(f"\nwrote {args.export}")
        else:
            print(
                f"[repro] no completed rows; skipping export to {args.export}",
                file=sys.stderr,
            )
    from repro.harness.runner import ExperimentSetup

    args.experiment = "dse"  # manifest labelling only
    setup = ExperimentSetup(
        num_cores=request.cores,
        scale=request.scale,
        accesses_per_core=request.accesses_per_core,
        seed=request.seed,
        backend=request.backend,
    )
    _write_manifests(args, argv, setup, list(result.failures))
    if result.failures:
        _print_failure_table(result.failures)
        return EXIT_PARTIAL
    return EXIT_OK


def _run_on_server(args: argparse.Namespace, address, request, *, verb="grid"):
    """Run the grid on a warm daemon, with reconnect-and-resume retries."""
    from repro.api.retry import RetryPolicy

    host, port = address
    with api.ServiceClient(
        host,
        port,
        connect_timeout=args.connect_timeout,
        retry=RetryPolicy(),
    ) as client:
        if verb == "dse":
            return client.run_dse(request)
        return client.run_grid(request)


def _print_failure_table(failures) -> None:
    from repro.harness.faults import CellFailure

    print(
        f"\n[repro] grid completed with {len(failures)} failed cell(s):",
        file=sys.stderr,
    )
    for record in failures:
        print(f"  {CellFailure(**dict(record)).describe()}", file=sys.stderr)
    print(
        "[repro] completed rows were kept; failures are recorded in the "
        "run manifest (exit code 3)",
        file=sys.stderr,
    )


def _write_manifests(
    args: argparse.Namespace,
    argv: list[str],
    setup,
    failures: list[dict] | None = None,
) -> None:
    """One manifest beside every artifact this invocation produced."""
    outputs = [p for p in (args.export, args.trace_out) if p]
    if not outputs:
        return
    from repro.obs import RunManifest

    manifest = RunManifest.collect(
        args.experiment,
        config=setup,
        seed=args.seed,
        argv=argv,
        failures=failures,
    )
    for output in outputs:
        manifest.write_next_to(output)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] not in _SUBCOMMANDS and not argv[0].startswith("-"):
        # Legacy invocation: `python -m repro fig1 ...`.
        print(
            f"note: `python -m repro {argv[0]}` is deprecated; "
            f"use `python -m repro run {argv[0]}`",
            file=sys.stderr,
        )
        argv = ["run", *argv]
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "list-schemes":
        return _cmd_list_schemes()
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "dse":
        return _cmd_dse(args, argv)
    return _cmd_run(args, argv)


if __name__ == "__main__":
    raise SystemExit(main())
