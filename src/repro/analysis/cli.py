"""``python -m repro lint`` — the simlint command-line front end.

Exit codes: 0 clean (or fully baselined), 1 new findings, 2 usage /
configuration errors. ``--update-baseline`` rewrites the committed
baseline from the current findings (the ratchet: run it only to shrink
the file or to adopt a deliberate, justified exception).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineError, split_by_baseline
from repro.analysis.config import load_config
from repro.analysis.engine import find_repo_root, run_lint
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import all_rules

__all__ = ["main"]

EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _default_paths() -> list[Path]:
    import repro

    return [Path(repro.__file__).resolve().parent]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "AST-level invariant checker: determinism, hot-path purity, "
            "fast/reference parity, scheme-registry completeness, stats-"
            "protocol stability and __slots__ enforcement "
            "(see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files/directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="A,B",
        help="comma-separated rule subset (default: all)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file (default: simlint-baseline.json at the repo "
        "root, when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (CI uses this to assert the tree "
        "itself is clean)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _usage_error(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return EXIT_USAGE


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for name, rule in sorted(all_rules().items()):
            print(f"  {name:24s} {rule.description}")
        return 0

    paths = [Path(p) for p in args.paths] or _default_paths()
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        return _usage_error(f"no such path(s): {', '.join(missing)}")

    root = find_repo_root(paths[0])
    config = load_config(root)
    rules = None
    if args.rules:
        names = [name.strip() for name in args.rules.split(",") if name.strip()]
        try:
            rules = all_rules(names)
        except KeyError as exc:
            return _usage_error(str(exc.args[0]))

    result = run_lint(paths, config=config, root=root, rules=rules)

    baseline = Baseline()
    baseline_path = Path(args.baseline) if args.baseline else root / config.baseline_name
    if args.update_baseline:
        Baseline.from_violations(result.violations).write(baseline_path)
        print(
            f"simlint: wrote {len(result.violations)} entr"
            f"{'y' if len(result.violations) == 1 else 'ies'} to {baseline_path}"
        )
        return 0
    if not args.no_baseline and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            return _usage_error(str(exc))

    new, tolerated, stale = split_by_baseline(result.violations, baseline)
    renderer = render_json if args.format == "json" else render_text
    print(
        renderer(
            result, new=new, tolerated=tolerated, stale_baseline_entries=stale
        )
    )
    return EXIT_FINDINGS if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
