"""One entry point per paper table/figure (see DESIGN.md experiment index)."""

from repro.harness.experiments.bandwidth import (
    fig9a_wasted_bandwidth,
    fig9b_metadata_rbh,
    fig9c_way_locator_hit_rate,
    fig10_small_block_fraction,
)
from repro.harness.experiments.design_space import (
    fig1_miss_rate_vs_block_size,
    fig2_block_utilization,
    fig5_mru_hits,
)
from repro.harness.experiments.energy import fig11_energy
from repro.harness.experiments.extensions import (
    controller_comparison,
    space_utilization_comparison,
    victim_buffer_study,
)
from repro.harness.experiments.latency import (
    LATENCY_SCHEMES,
    fig3_latency_breakdown,
    fig8c_access_latency,
)
from repro.harness.experiments.performance import (
    fig7_antt,
    fig8a_component_analysis,
    fig8b_hit_rate,
    measure_antt,
)
from repro.harness.experiments.prefetch import table6_prefetch
from repro.harness.experiments.sensitivity import (
    ablation_parallel_tag,
    ablation_sampling,
    ablation_threshold,
    ablation_weight,
    fig12_sensitivity,
)
from repro.harness.experiments.tables import (
    table1_feature_matrix,
    table3_way_locator_storage,
)

__all__ = [
    "fig1_miss_rate_vs_block_size",
    "fig2_block_utilization",
    "fig3_latency_breakdown",
    "fig5_mru_hits",
    "fig7_antt",
    "fig8a_component_analysis",
    "fig8b_hit_rate",
    "fig8c_access_latency",
    "fig9a_wasted_bandwidth",
    "fig9b_metadata_rbh",
    "fig9c_way_locator_hit_rate",
    "fig10_small_block_fraction",
    "fig11_energy",
    "fig12_sensitivity",
    "table1_feature_matrix",
    "table3_way_locator_storage",
    "table6_prefetch",
    "ablation_parallel_tag",
    "ablation_sampling",
    "ablation_threshold",
    "ablation_weight",
    "controller_comparison",
    "space_utilization_comparison",
    "victim_buffer_study",
    "measure_antt",
    "LATENCY_SCHEMES",
]
