"""ATCache tests."""


from repro.common.config import DRAMCacheGeometry, DRAMGeometry, DRAMTimingConfig
from repro.dram.controller import MemoryController
from repro.dramcache.atcache import ATCache


def make_cache(**kw) -> ATCache:
    geometry = DRAMCacheGeometry(
        capacity=1 << 20,
        geometry=DRAMGeometry(channels=2, banks_per_channel=8, page_size=2048),
    )
    offchip = MemoryController(
        DRAMGeometry(channels=1, banks_per_channel=16, page_size=2048),
        DRAMTimingConfig.ddr3_1600h(),
    )
    return ATCache(geometry, offchip, **kw)


class TestTagCache:
    def test_tag_cache_records_hits(self):
        cache = make_cache()
        cache.access(0x4000, 0)
        cache.access(0x4000, 1000)
        assert cache.tag_cache_stat.total == 2
        assert cache.tag_cache_stat.hits >= 1

    def test_tag_cache_hit_is_faster(self):
        cache = make_cache()
        cache.access(0x4000, 0)
        miss_path = cache.access(0x4000 + (1 << 18), 100_000)  # far set
        cache.access(0x4000, 200_000)
        hit_path = cache.access(0x4000, 300_000)
        assert hit_path.hit
        assert hit_path.latency < miss_path.latency + 60

    def test_pg_prefetch_groups_sets(self):
        """A tag fill covers the whole PG-aligned group of sets."""
        cache = make_cache(tag_cache_sets=8, prefetch_granularity=8)
        cache.access(0x0000, 0)  # set 0 -> group 0 installed
        cache.access(64 * 3, 1000)  # set 3, same group
        assert cache.tag_cache_stat.hits >= 1

    def test_auto_sizing_scales_with_cache(self):
        small = make_cache()
        assert small.tag_cache.num_sets >= 1

    def test_explicit_sizing_respected(self):
        cache = make_cache(tag_cache_sets=4, tag_cache_assoc=4)
        assert cache.tag_cache.num_sets == 4
        assert cache.tag_cache.associativity == 4


class TestCaching:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(0x4000, 0).hit
        assert cache.access(0x4000, 1000).hit

    def test_tag_cache_miss_serializes_dram_tag_read(self):
        cache = make_cache(tag_cache_sets=1, tag_cache_assoc=1)
        cache.access(0x4000, 0)
        # thrash the 1-entry tag cache with a distant set group
        cache.access(0x4000 + (1 << 19), 100_000)
        r = cache.access(0x4000, 200_000)
        assert r.hit
        t = cache.geometry.timing
        # serial: tag read (2 bursts) + compare + data column
        assert r.latency >= t.cl + 2 * t.burst_cycles + 1 + t.cl + t.burst_cycles

    def test_writeback_on_dirty_eviction(self):
        cache = make_cache()
        t = 0
        cache.access(0x1000, t, is_write=True)
        for i in range(1, 30):
            r = cache.access(0x1000 + i * cache.num_sets * 64, t)
            t = r.complete + 10
        cache.flush_posted()
        assert cache.offchip_writeback_bytes == 64

    def test_stats_snapshot_includes_tag_cache(self):
        cache = make_cache()
        cache.access(0x4000, 0)
        assert "tag_cache_hit_rate" in cache.stats_snapshot()

    def test_reset_stats(self):
        cache = make_cache()
        cache.access(0x4000, 0)
        cache.reset_stats()
        assert cache.tag_cache_stat.total == 0
        assert cache.resident(0x4000)
