"""Design-space experiment internals (Figure 1's MRC rewire).

Figure 1 moved from one SetAssociativeCache walk per block size to a
single MRC ghost pass; the golden test here pins the rewired rows
bit-for-bit against the old per-block-size reference walk. Plus the
fault-tolerance seam: a failed mix cell must drop only its own row.
"""

import pytest

import repro.harness.experiments.design_space as design_space
from repro.harness.experiments.design_space import (
    _Fig1Cell,
    _fig1_row,
    fig1_miss_rate_vs_block_size,
)
from repro.harness.parallel import complete_groups
from repro.harness.runner import ExperimentSetup
from repro.sram.cache import SetAssociativeCache

TINY = ExperimentSetup(num_cores=4, accesses_per_core=1500)
BLOCKS = (64, 256, 1024)


def _reference_row(mix: str, block_sizes, associativity: int = 8) -> dict:
    """The pre-MRC implementation: one LRU cache walk per block size."""
    capacity = TINY.system.dram_cache.capacity
    stream = TINY.trace_records(mix).addresses.tolist()
    row: dict = {"mix": mix}
    for block_size in block_sizes:
        cache = SetAssociativeCache(
            capacity, associativity, block_size, policy="lru"
        )
        for address in stream:
            cache.access(address)
        row[f"{block_size}B"] = cache.accesses.miss_rate
    return row


class TestFig1Golden:
    def test_mrc_row_is_bit_identical_to_reference_walk(self):
        cell = _Fig1Cell(
            mix="Q2", setup=TINY, block_sizes=BLOCKS, associativity=8
        )
        assert _fig1_row(cell) == _reference_row("Q2", BLOCKS)

    def test_row_shape(self):
        cell = _Fig1Cell(
            mix="Q7", setup=TINY, block_sizes=BLOCKS, associativity=8
        )
        row = _fig1_row(cell)
        assert list(row) == ["mix", "64B", "256B", "1024B"]
        assert all(0.0 <= row[f"{bs}B"] <= 1.0 for bs in BLOCKS)

    def test_experiment_appends_mean_row(self):
        rows = fig1_miss_rate_vs_block_size(
            setup=TINY, mix_names=["Q2", "Q7"], block_sizes=BLOCKS
        )
        assert [r["mix"] for r in rows] == ["Q2", "Q7", "mean"]
        for bs in BLOCKS:
            key = f"{bs}B"
            assert rows[-1][key] == pytest.approx(
                (rows[0][key] + rows[1][key]) / 2
            )


class TestFailureTolerance:
    def test_failed_cell_drops_only_its_row(self, monkeypatch):
        # A permanently failed cell comes back as None from the
        # fault-tolerant grid; the experiment must still report every
        # intact mix (plus the mean over what completed).
        def one_cell_failed(fn, cells, jobs=None):
            return [None if c.mix == "Q2" else fn(c) for c in cells]

        monkeypatch.setattr(design_space, "run_grid", one_cell_failed)
        rows = fig1_miss_rate_vs_block_size(
            setup=TINY, mix_names=["Q2", "Q7"], block_sizes=(64,)
        )
        assert [r["mix"] for r in rows] == ["Q7", "mean"]

    def test_complete_groups_drops_none_chunks(self):
        kept = complete_groups(["a", "b", "c"], [1, None, 3], 1)
        assert kept == [("a", [1]), ("c", [3])]
