"""Bank-state timing model.

Each bank tracks its open row and the time at which it can accept the next
command. An access is resolved into one of the three canonical cases the
paper's Figure 3 reasons about:

* **row hit** — the row is already open: pay CAS only,
* **row closed** — the bank is precharged: pay ACT + CAS,
* **row conflict** — a different row is open: pay PRE + ACT + CAS.

Refresh is modeled deterministically: every ``tREFI`` the bank becomes
unavailable for ``tRFC`` and its row buffer is closed, per Table IV's
refresh parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.common.config import DRAMTimingConfig
from repro.common.stats import RateStat

__all__ = ["RowOutcome", "BankAccess", "Bank"]


class RowOutcome(Enum):
    """How an access found the row buffer."""

    HIT = "hit"
    CLOSED = "closed"
    CONFLICT = "conflict"


_OUTCOMES = (RowOutcome.HIT, RowOutcome.CLOSED, RowOutcome.CONFLICT)


@dataclass(slots=True)
class BankAccess:
    """Timing of one column access as resolved by a bank.

    ``issue_time`` is when the bank started serving the request,
    ``data_ready`` is when the first beat of data is available (CAS
    resolved; the channel adds data-bus transfer on top), and
    ``outcome`` records the row-buffer case for RBH statistics.
    """

    outcome: RowOutcome
    issue_time: int
    data_ready: int

    @property
    def core_latency(self) -> int:
        return self.data_ready - self.issue_time


class Bank:
    """One DRAM bank with an open-page (row buffer) policy."""

    __slots__ = (
        "_timings",
        "_open_row",
        "_ready_at",
        "_next_refresh",
        "row_buffer",
        "activations",
        "precharges",
        "refreshes",
        "_trcd",
        "_trp_trcd",
        "_cl",
        "_tccd",
        "last_outcome",
        "last_issue",
    )

    def __init__(self, timings: DRAMTimingConfig, *, refresh_offset: int = 0) -> None:
        self._timings = timings
        self._open_row: int | None = None
        self._ready_at = 0
        self._next_refresh = timings.trefi + refresh_offset
        self.row_buffer = RateStat()  # hit = row-buffer hit
        self.activations = 0
        self.precharges = 0
        self.refreshes = 0
        # Timing constants flattened onto the instance for the access path.
        self._trcd = timings.trcd
        self._trp_trcd = timings.trp + timings.trcd
        self._cl = timings.cl
        self._tccd = timings.tccd
        # Fast-path scratch: outcome (0 hit / 1 closed / 2 conflict) and
        # adjusted issue time of the most recent access_fast call.
        self.last_outcome = 0
        self.last_issue = 0

    @property
    def open_row(self) -> int | None:
        return self._open_row

    @property
    def ready_at(self) -> int:
        return self._ready_at

    def _apply_refresh(self, now: int) -> int:
        """Account refresh; returns the adjusted access time.

        Refreshes that fell entirely within an idle period already
        happened — they close the row and count, but do not delay this
        access. Only a refresh *in progress* at the access time stalls
        it (by the remainder of tRFC).
        """
        t = max(now, self._ready_at)
        if t < self._next_refresh:
            return t
        return self._refresh_stall(t)

    def _refresh_stall(self, t: int) -> int:
        """Slow path of :meth:`_apply_refresh`: ``t`` has crossed tREFI."""
        elapsed = t - self._next_refresh
        completed = elapsed // self._timings.trefi
        self.refreshes += int(completed)
        self._next_refresh += completed * self._timings.trefi
        # The bank is mid-refresh if t lands inside [start, start + tRFC).
        if t < self._next_refresh + self._timings.trfc:
            t = self._next_refresh + self._timings.trfc
        self.refreshes += 1
        self._next_refresh += self._timings.trefi
        self._open_row = None
        return t

    def activate(self, row: int, now: int) -> int:
        """Open ``row`` without issuing a column access.

        Used by the Bi-Modal cache to open the data row concurrently with
        the metadata-bank tag read (Section III-D2: the row is opened in
        anticipation of a hit, the column access waits for the tag check).
        Returns the time at which the row is open.
        """
        t = self._apply_refresh(now)
        if self._open_row == row:
            self._ready_at = max(self._ready_at, t)
            return t
        if self._open_row is not None:
            t += self._timings.trp
            self.precharges += 1
        t += self._timings.trcd
        self.activations += 1
        self._open_row = row
        self._ready_at = t
        return t

    def access_fast(self, row: int, now: int) -> int:
        """Resolve a column access to ``row``; returns the data-ready time.

        CAS commands pipeline: the bank accepts the next command tCCD
        after this one's CAS (not after its data returns), so open-row
        streams sustain full bus bandwidth while each individual access
        still observes the complete CL (and ACT/PRE) latency.

        Flat fast path: no :class:`BankAccess` allocation. The row-buffer
        case lands in ``last_outcome`` (0 hit / 1 closed / 2 conflict)
        and the adjusted issue time in ``last_issue``; :meth:`access`
        wraps this into the rich dataclass for tests and tooling.
        """
        t = now if now > self._ready_at else self._ready_at
        if t >= self._next_refresh:
            t = self._refresh_stall(t)
        open_row = self._open_row
        row_buffer = self.row_buffer
        if open_row == row:
            self.last_outcome = 0
            cas_issue = t
            row_buffer.hits += 1
        elif open_row is None:
            self.last_outcome = 1
            self.activations += 1
            cas_issue = t + self._trcd
            row_buffer.misses += 1
        else:
            self.last_outcome = 2
            self.precharges += 1
            self.activations += 1
            cas_issue = t + self._trp_trcd
            row_buffer.misses += 1
        self._open_row = row
        self._ready_at = cas_issue + self._tccd
        self.last_issue = t
        return cas_issue + self._cl

    def access(self, row: int, now: int) -> BankAccess:
        """Rich wrapper of :meth:`access_fast` (same state transitions)."""
        data_ready = self.access_fast(row, now)
        return BankAccess(_OUTCOMES[self.last_outcome], self.last_issue, data_ready)

    def column_access(self, now: int) -> int:
        """Extra column access to the already-open row (multi-burst reads).

        Returns the time the additional CAS resolves. The row must be open.
        """
        if self._open_row is None:
            raise RuntimeError("column_access requires an open row")
        t = max(now, self._ready_at)
        self._ready_at = t + self._timings.tccd
        return t + self._timings.cl

    def reset_stats(self) -> None:
        self.row_buffer.reset()
        self.activations = 0
        self.precharges = 0
        self.refreshes = 0
