"""Figure 8(c): average LLSC miss penalty across all organizations.

Paper: Bi-Modal achieves the lowest average access latency — 22.9% below
AlloyCache, 12% below Footprint Cache, 26.5% below ATCache (V-C1) —
despite keeping its metadata in DRAM.
"""

from conftest import QUAD_MIXES

from repro.harness.experiments import fig8c_access_latency


def test_fig8c_access_latency(benchmark, report, quad_setup):
    rows = benchmark.pedantic(
        lambda: fig8c_access_latency(setup=quad_setup, mix_names=QUAD_MIXES),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Figure 8c: average LLSC miss penalty (cycles)")
    mean = rows[-1]
    assert mean["mix"] == "mean"
    # Bi-Modal beats the baseline and the tags-in-SRAM/tag-cache schemes.
    assert mean["bimodal"] < mean["alloy"]
    assert mean["bimodal"] < mean["atcache"]
    assert mean["bimodal"] < mean["lohhill"]
    # The naive fixed-512B organization (no locator, serialized tags) is
    # the worst of the big-block designs — the gap the way locator closes.
    assert mean["fixed512"] > 1.5 * mean["bimodal"]
