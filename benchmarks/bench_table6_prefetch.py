"""Table VI: ANTT gain over a prefetch-enabled AlloyCache baseline.

Paper (quad-core): N=1 -> 9.8% (PREF_NORMAL) / 10.4% (PREF_BYPASS);
N=3 -> 8.7% / 9.3%. Shape: gains survive prefetching; bypass is slightly
ahead of normal; the aggressive prefetcher narrows the margin.
"""

from repro.harness.experiments import table6_prefetch
from repro.harness.runner import ExperimentSetup

PREFETCH_MIXES = ["Q2", "Q12", "Q20"]


def test_table6_prefetch(benchmark, report):
    setup = ExperimentSetup(num_cores=4, accesses_per_core=10_000, seed=1)
    rows = benchmark.pedantic(
        lambda: table6_prefetch(setup=setup, mix_names=PREFETCH_MIXES),
        rounds=1,
        iterations=1,
    )
    report(rows, title="Table VI: ANTT gain over prefetch-enabled baseline")
    by_n = {r["N"]: r for r in rows}
    # Bi-Modal's benefit holds under both prefetch degrees.
    assert by_n[1]["pref_normal_pct"] > 0.0
    assert by_n[3]["pref_normal_pct"] > 0.0
    assert by_n[1]["pref_bypass_pct"] > 0.0
