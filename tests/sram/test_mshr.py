"""MSHR merge/throttle tests."""

import pytest

from repro.sram.mshr import MSHRFile


class TestMerging:
    def test_secondary_miss_merges(self):
        mshr = MSHRFile(4)
        mshr.allocate(0x100, now=0, fill_time=100)
        fill = mshr.lookup(0x100, now=50)
        assert fill == 100
        assert mshr.merged_misses == 1

    def test_completed_entry_not_merged(self):
        mshr = MSHRFile(4)
        mshr.allocate(0x100, now=0, fill_time=100)
        assert mshr.lookup(0x100, now=150) is None

    def test_unknown_block_not_merged(self):
        mshr = MSHRFile(4)
        assert mshr.lookup(0x200, now=0) is None
        assert mshr.merged_misses == 0


class TestThrottling:
    def test_full_mshrs_stall_issue(self):
        mshr = MSHRFile(2)
        mshr.allocate(0x100, now=0, fill_time=500)
        mshr.allocate(0x200, now=0, fill_time=600)
        issue = mshr.allocate(0x300, now=10, fill_time=700)
        assert issue == 500
        assert mshr.stalls == 1

    def test_free_mshrs_no_stall(self):
        mshr = MSHRFile(8)
        issue = mshr.allocate(0x100, now=25, fill_time=500)
        assert issue == 25
        assert mshr.stalls == 0

    def test_expired_entries_freed(self):
        mshr = MSHRFile(2)
        mshr.allocate(0x100, now=0, fill_time=10)
        mshr.allocate(0x200, now=0, fill_time=20)
        issue = mshr.allocate(0x300, now=100, fill_time=200)
        assert issue == 100

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_outstanding_bounded(self):
        mshr = MSHRFile(4)
        for i in range(50):
            mshr.allocate(i * 64, now=i, fill_time=10_000 + i)
        assert mshr.outstanding <= 4 + 1


def test_reset_stats():
    mshr = MSHRFile(2)
    mshr.allocate(0x100, now=0, fill_time=10)
    mshr.lookup(0x100, now=5)
    mshr.reset_stats()
    assert mshr.primary_misses == 0
    assert mshr.merged_misses == 0
