"""Trace materialization cache: identity, memoization and disk layer."""

import pytest

from repro.workloads import trace_cache
from repro.workloads.trace import MultiProgramTrace
from repro.workloads.mixes import get_mix

MIX = "Q1"
ACCESSES = 800


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Each test gets an empty memory layer and a private disk directory."""
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "traces"))
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    trace_cache.clear_memory_cache()
    yield
    trace_cache.clear_memory_cache()


def _materialize_direct():
    return MultiProgramTrace(
        get_mix(MIX), accesses_per_core=ACCESSES, seed=1
    ).materialize()


def test_materialize_matches_record_iteration():
    """The vectorized merge equals the per-record heap merge, in order."""
    trace = MultiProgramTrace(get_mix(MIX), accesses_per_core=ACCESSES, seed=1)
    merged = trace.materialize()
    records = list(trace)
    assert len(merged) == len(records)
    assert merged.addresses.tolist() == [r.address for r in records]
    assert merged.is_write.tolist() == [r.is_write for r in records]
    assert merged.icount.tolist() == [r.icount for r in records]


def test_cached_arrays_byte_identical_to_generation():
    chunk = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    direct = _materialize_direct()
    assert chunk.addresses.tobytes() == direct.addresses.tobytes()
    assert chunk.is_write.tobytes() == direct.is_write.tobytes()
    assert chunk.icount.tobytes() == direct.icount.tobytes()


def test_memory_hit_returns_identical_arrays():
    before = trace_cache.cache_stats()
    first = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    second = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    after = trace_cache.cache_stats()
    assert after["misses"] == before["misses"] + 1
    assert after["memory_hits"] == before["memory_hits"] + 1
    # Same underlying buffers — the hit shares, it does not regenerate.
    assert second.addresses is first.addresses
    assert second.addresses.tobytes() == first.addresses.tobytes()


def test_cached_arrays_are_read_only():
    chunk = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    with pytest.raises(ValueError):
        chunk.addresses[0] = 0


def test_disk_round_trip_byte_identical(tmp_path):
    first = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    trace_cache.clear_memory_cache()  # force the next lookup to the disk layer
    before = trace_cache.cache_stats()
    second = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    after = trace_cache.cache_stats()
    assert after["disk_hits"] == before["disk_hits"] + 1
    assert after["misses"] == before["misses"]
    assert second.addresses.tobytes() == first.addresses.tobytes()
    assert second.is_write.tobytes() == first.is_write.tobytes()
    assert second.icount.tobytes() == first.icount.tobytes()


def test_disk_layer_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    trace_cache.clear_memory_cache()
    before = trace_cache.cache_stats()
    trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    after = trace_cache.cache_stats()
    assert after["misses"] == before["misses"] + 1
    assert after["disk_hits"] == before["disk_hits"]


def test_key_distinguishes_every_parameter():
    base = dict(accesses_per_core=ACCESSES, seed=1)
    key = trace_cache.trace_key(MIX, **base)
    assert key != trace_cache.trace_key(MIX, accesses_per_core=ACCESSES + 1, seed=1)
    assert key != trace_cache.trace_key(MIX, accesses_per_core=ACCESSES, seed=2)
    assert key != trace_cache.trace_key(MIX, **base, footprint_scale=2.0)
    assert key != trace_cache.trace_key(MIX, **base, intensity_scale=0.5)
    assert key != trace_cache.trace_key("Q2", **base)
    # Deterministic: same parameters, same key (it is the on-disk stem).
    assert key == trace_cache.trace_key(MIX, **base)


def _entry_path():
    directory = trace_cache.disk_cache_dir()
    key = trace_cache.trace_key(MIX, accesses_per_core=ACCESSES, seed=1)
    return f"{directory}/{key}.npz"


def test_corrupt_disk_entry_regenerates(tmp_path):
    trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    path = _entry_path()
    with open(path, "wb") as fh:
        fh.write(b"not an npz")
    trace_cache.clear_memory_cache()
    before = trace_cache.cache_stats()
    chunk = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
    after = trace_cache.cache_stats()
    assert after["misses"] == before["misses"] + 1
    direct = _materialize_direct()
    assert chunk.addresses.tobytes() == direct.addresses.tobytes()


class TestSelfHealing:
    """Corrupt entries are quarantined, counted and regenerated."""

    def _corrupt_and_reload(self):
        trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
        path = _entry_path()
        with open(path, "wb") as fh:
            fh.write(b"PK\x03\x04 torn npz write")
        trace_cache.clear_memory_cache()
        return path, trace_cache.materialized_trace(
            MIX, accesses_per_core=ACCESSES
        )

    def test_corrupt_entry_is_quarantined(self):
        import os

        path, _ = self._corrupt_and_reload()
        assert os.path.exists(f"{path}.corrupt")  # moved aside, not deleted
        # The regenerated entry replaced the corrupt one on disk.
        assert os.path.exists(path)

    def test_quarantine_increments_stat_and_metric(self):
        from repro.obs import get_metrics

        before_stat = trace_cache.cache_stats()["corrupt_evictions"]
        before_metric = get_metrics().counter_value(
            "trace_cache.corrupt_evictions"
        )
        self._corrupt_and_reload()
        assert (
            trace_cache.cache_stats()["corrupt_evictions"] == before_stat + 1
        )
        assert (
            get_metrics().counter_value("trace_cache.corrupt_evictions")
            == before_metric + 1
        )

    def test_regenerated_trace_is_byte_identical(self):
        _, chunk = self._corrupt_and_reload()
        direct = _materialize_direct()
        assert chunk.addresses.tobytes() == direct.addresses.tobytes()
        assert chunk.is_write.tobytes() == direct.is_write.tobytes()
        assert chunk.icount.tobytes() == direct.icount.tobytes()

    def test_truncated_entry_heals_too(self):
        import os

        trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
        path = _entry_path()
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])  # torn write from a killed proc
        trace_cache.clear_memory_cache()
        chunk = trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
        assert os.path.exists(f"{path}.corrupt")
        direct = _materialize_direct()
        assert chunk.addresses.tobytes() == direct.addresses.tobytes()


class TestPruneRace:
    """Sibling workers pruning the same directory must not collide."""

    def test_missing_file_during_prune_is_skipped(self, monkeypatch):
        import os

        trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
        directory = trace_cache.disk_cache_dir()
        real_unlink = os.unlink

        def racy_unlink(path, *args, **kwargs):
            # Another worker pruned this file between scandir and unlink.
            real_unlink(path, *args, **kwargs)
            raise FileNotFoundError(path)

        monkeypatch.setattr(os, "unlink", racy_unlink)
        monkeypatch.setenv("REPRO_TRACE_CACHE_MB", "0")
        trace_cache._prune_disk(directory)  # must not raise
        assert not [
            name for name in os.listdir(directory) if name.endswith(".npz")
        ]

    def test_file_vanishing_before_stat_is_skipped(self, monkeypatch):
        import os

        trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
        directory = trace_cache.disk_cache_dir()

        real_scandir = os.scandir

        class VanishingEntry:
            def __init__(self, entry):
                self._entry = entry
                self.name = entry.name
                self.path = entry.path

            def stat(self):
                raise FileNotFoundError(self.path)

        class VanishingScan:
            def __init__(self, inner):
                self._inner = inner

            def __enter__(self):
                return (VanishingEntry(e) for e in self._inner.__enter__())

            def __exit__(self, *exc):
                return self._inner.__exit__(*exc)

        monkeypatch.setattr(
            os, "scandir", lambda d: VanishingScan(real_scandir(d))
        )
        trace_cache._prune_disk(directory)  # must not raise

    def test_quarantined_files_age_out_with_the_cap(self, monkeypatch):
        import os

        trace_cache.materialized_trace(MIX, accesses_per_core=ACCESSES)
        directory = trace_cache.disk_cache_dir()
        stale = os.path.join(directory, "old.npz.corrupt")
        with open(stale, "wb") as fh:
            fh.write(b"quarantined junk")
        monkeypatch.setenv("REPRO_TRACE_CACHE_MB", "0")
        trace_cache._prune_disk(directory)
        assert not os.path.exists(stale)
