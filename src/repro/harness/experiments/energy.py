"""Figure 11: off-chip + DRAM cache energy savings of Bi-Modal."""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.model import EnergyModel
from repro.harness.parallel import complete_groups, run_grid
from repro.harness.reporting import append_mean_row
from repro.harness.runner import ExperimentSetup, run_scheme_on_mix
from repro.workloads.mixes import mixes_for_cores

__all__ = ["fig11_energy"]


@dataclass(frozen=True)
class _EnergyCell:
    mix: str
    setup: ExperimentSetup


def _energy_row(cell: _EnergyCell) -> dict:
    """Run alloy + bimodal on one mix and report the energy comparison."""
    model = EnergyModel()
    base = run_scheme_on_mix(
        "alloy", cell.mix, setup=cell.setup, warmup_fraction=0.5
    )
    bi = run_scheme_on_mix(
        "bimodal", cell.mix, setup=cell.setup, warmup_fraction=0.5
    )
    e_base = model.measure(base.cache, base.cache.offchip)
    e_bi = model.measure(bi.cache, bi.cache.offchip)
    return {
        "mix": cell.mix,
        "alloy_uj": e_base.total / 1000.0,
        "bimodal_uj": e_bi.total / 1000.0,
        "offchip_saving_pct": 100.0
        * (e_base.offchip_total - e_bi.offchip_total)
        / e_base.offchip_total
        if e_base.offchip_total
        else 0.0,
        "total_saving_pct": model.savings_percent(e_base, e_bi),
    }


def fig11_energy(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Figure 11: memory energy reduction over AlloyCache.

    Paper averages: 14.9% (4-core), 11.8% (8-core), 12.4% (16-core).
    The savings come from higher DRAM cache hit rates (fewer off-chip
    activations) and better off-chip spatial locality, against the
    baseline's activation-heavy 64 B miss traffic. Measured post-warmup
    (the adapted steady state the paper's long runs report).
    """
    setup = setup or ExperimentSetup(num_cores=8)
    names = mix_names or list(mixes_for_cores(setup.num_cores))
    cells = [_EnergyCell(mix=name, setup=setup) for name in names]
    results = run_grid(_energy_row, cells, jobs=jobs)
    rows = [row for _, (row,) in complete_groups(names, results, 1)]
    return append_mean_row(rows)
