"""Closed-loop trace driving and scheme construction helpers.

The design-space experiments (hit rates, way locator behaviour, RBH,
bandwidth — everything except ANTT) follow the paper's trace-driven
methodology: feed the DRAM cache a merged LLSC-miss stream under a
bounded outstanding-request window (the LLSC's MSHRs provide exactly
this backpressure in hardware), so bank and bus contention stay
realistic without simulating the cores.
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass, field

from repro.bimodal.cache import BiModalConfig
from repro.common.config import SystemConfig, system_config
from repro.dram.controller import MemoryController
from repro.dramcache.base import DRAMCacheBase
from repro.obs import SectionTimer, get_metrics, get_tracer
from repro.workloads.generator import TraceChunk
from repro.workloads.mixes import WorkloadMix, get_mix
from repro.workloads.trace import MultiProgramTrace
from repro.workloads.trace_cache import materialized_trace

__all__ = [
    "SCALE",
    "ExperimentSetup",
    "build_offchip",
    "build_cache",
    "drive_cache",
    "run_scheme_on_mix",
    "scaled_locator_bits",
]

# Capacity scale factor: all experiments shrink cache capacity and
# workload footprints by the same factor (128 MB -> 8 MB for 4-core) so
# footprint/capacity ratios — which determine every relative result —
# match the paper's setup at Python-simulation speeds.
SCALE = 16


def scaled_locator_bits(paper_k: int = 14, scale: int = SCALE) -> int:
    """Preserve the paper's locator-entries : cache-sets ratio.

    The paper's K=14 gives 32K entry-pairs against a 64K-set 128 MB
    cache; dividing capacity by ``scale`` divides the set count equally,
    so K shrinks by log2(scale).
    """
    return paper_k - (scale.bit_length() - 1)


@dataclass(frozen=True)
class ExperimentSetup:
    """A scaled Table IV configuration for one core count.

    ``intensity_scale`` reduces per-core offered load for larger
    systems so the per-channel utilization matches the operating point
    the paper's workloads produced (8/16-core benches use 0.5).

    ``backend`` names the drive engine for every cell run under this
    setup (``scalar`` | ``vectorized``). The empty default means
    "unspecified": drives then fall back to ``REPRO_BACKEND``/scalar
    exactly as before, so direct callers keep the legacy behaviour
    while the facade threads a request's backend through the setup
    instead of mutating the process environment.
    """

    num_cores: int = 4
    scale: int = SCALE
    accesses_per_core: int = 60_000
    seed: int = 1
    intensity_scale: float = 1.0
    backend: str = ""

    @property
    def system(self) -> SystemConfig:
        base = system_config(self.num_cores)
        return base.scaled_cache(base.dram_cache.capacity // self.scale)

    @property
    def footprint_scale(self) -> float:
        return float(self.scale)

    def mixes(self) -> dict[str, WorkloadMix]:
        from repro.workloads.mixes import mixes_for_cores

        return mixes_for_cores(self.num_cores)

    def trace(self, mix: WorkloadMix | str) -> MultiProgramTrace:
        if isinstance(mix, str):
            mix = get_mix(mix)
        return MultiProgramTrace(
            mix,
            accesses_per_core=self.accesses_per_core,
            seed=self.seed,
            footprint_scale=self.footprint_scale,
            intensity_scale=self.intensity_scale,
        )

    def trace_records(self, mix: WorkloadMix | str) -> TraceChunk:
        """Merged record arrays for ``mix``, via the trace cache.

        Byte-identical to ``self.trace(mix)``'s record stream; repeated
        cells and re-runs skip generation entirely.
        """
        return materialized_trace(
            mix,
            accesses_per_core=self.accesses_per_core,
            seed=self.seed,
            footprint_scale=self.footprint_scale,
            intensity_scale=self.intensity_scale,
        )


def build_offchip(system: SystemConfig) -> MemoryController:
    return MemoryController(system.offchip_geometry, system.offchip_timing)


def build_cache(
    scheme: str,
    system: SystemConfig,
    *,
    offchip: MemoryController | None = None,
    bimodal_config: BiModalConfig | None = None,
    scale: int = SCALE,
    adaptation_interval: int = 10_000,
) -> DRAMCacheBase:
    """Construct a DRAM cache organization by name.

    Resolution goes through :mod:`repro.harness.schemes`; see
    ``available_schemes()`` there (or ``repro list-schemes``) for the
    registered names. Unknown names raise
    :class:`~repro.harness.schemes.UnknownSchemeError` (a
    ``ValueError``) listing the valid ones.
    """
    from repro.harness.schemes import SchemeBuildContext, build_scheme

    if offchip is None:
        offchip = build_offchip(system)
    return build_scheme(
        scheme,
        SchemeBuildContext(
            system=system,
            offchip=offchip,
            bimodal_config=bimodal_config,
            scale=scale,
            adaptation_interval=adaptation_interval,
        ),
    )


@dataclass
class DriveResult:
    """Summary of one closed-loop drive."""

    cache: DRAMCacheBase
    accesses: int
    end_time: int
    stats: dict = field(default_factory=dict)
    # Which engine produced the result, and whether a non-default
    # backend had to fall back to the scalar reference path (schemes
    # without a vectorized kernel, tuple-iterable records).
    backend: str = "scalar"
    backend_fallbacks: int = 0

    def to_dict(self) -> dict:
        """Flat-key export (shared stats protocol; see harness.export).

        Drive-level totals use ``records``/``end_time`` so they cannot
        collide with the cache snapshot's ``accesses`` (which counts
        only the measured, post-warmup region). Backend bookkeeping is
        exported only for non-default backends, keeping scalar exports
        byte-identical to pre-seam output.
        """
        out: dict = {"records": self.accesses, "end_time": self.end_time}
        out.update(self.stats)
        if self.backend != "scalar":
            out["backend"] = self.backend
            out["backend_fallbacks"] = self.backend_fallbacks
        return out


class _DriveState:
    """Mutable closed-loop issue state threaded through record batches."""

    __slots__ = ("now", "end", "count", "issued", "inflight")

    def __init__(self) -> None:
        self.now = 0.0
        self.end = 0
        self.count = 0
        self.issued = 0
        # Bounded in-flight completion times, kept as a heap. Only the
        # minimum is ever consumed, and only when the window is full, so
        # heappush/heapreplace (O(log window)) replaces the old
        # min() + list.index O(window) scan with identical results: the
        # multiset of in-flight completions is the same either way
        # (pinned by tests/harness/test_drive_window.py).
        self.inflight: list[int] = []


def _drive_batch(
    cache: DRAMCacheBase,
    addresses: list,
    is_writes: list,
    icounts: list,
    state: _DriveState,
    *,
    window: int,
    min_gap: int,
    pace: float,
    stall_scale: float,
) -> None:
    """Issue one batch of records; the hot loop of every drive.

    Arithmetic and ordering are identical to the original per-record
    generator loop: the same ``now`` pacing, the same earliest-completion
    window stall (the heap root equals ``min`` of the old in-flight
    list), and the same int truncation on the access timestamp. The
    allocation-free ``cache.access_fast`` path returns the completion
    time as a plain int; every access starts at the (truncated) issue
    time, so the core-stall term uses it directly.
    """
    access_fast = cache.access_fast
    inflight = state.inflight
    now = state.now
    end = state.end
    depth = len(inflight)
    heap_push = heapq.heappush
    heap_replace = heapq.heapreplace
    for address, is_write, icount in zip(addresses, is_writes, icounts):
        gap = icount * pace
        now += gap if gap > min_gap else min_gap
        if depth >= window:
            earliest = inflight[0]
            if earliest > now:
                now = float(earliest)
            inow = int(now)
            complete = access_fast(address, inow, is_write)
            heap_replace(inflight, complete)
        else:
            inow = int(now)
            complete = access_fast(address, inow, is_write)
            heap_push(inflight, complete)
            depth += 1
        if not is_write:
            now += (complete - inow) * stall_scale
        if complete > end:
            end = complete
    state.now = now
    state.end = end
    state.count += len(addresses)
    state.issued += len(addresses)


def _drive_fast(
    cache: DRAMCacheBase,
    chunks,
    *,
    window: int,
    min_gap: int,
    cycles_per_instruction: float,
    streams: int,
    mlp: float,
    warmup: int,
) -> DriveResult:
    """Drive :class:`TraceChunk` batches through the cache (fast path)."""
    pace = cycles_per_instruction / max(1, streams)
    stall_scale = 1.0 / (mlp * max(1, streams))
    state = _DriveState()
    for chunk in chunks:
        addresses = chunk.addresses.tolist()
        is_writes = chunk.is_write.tolist()
        icounts = chunk.icount.tolist()
        # The warm-up boundary semantics match the original loop: stats
        # reset immediately *before* the ``warmup``-th record is issued.
        if warmup and state.issued < warmup <= state.issued + len(addresses):
            split = warmup - state.issued - 1
            _drive_batch(
                cache, addresses[:split], is_writes[:split], icounts[:split],
                state, window=window, min_gap=min_gap, pace=pace,
                stall_scale=stall_scale,
            )
            cache.reset_stats()
            addresses = addresses[split:]
            is_writes = is_writes[split:]
            icounts = icounts[split:]
        _drive_batch(
            cache, addresses, is_writes, icounts, state,
            window=window, min_gap=min_gap, pace=pace, stall_scale=stall_scale,
        )
    return DriveResult(  # simlint: off=hot-path-purity -- one record per drive, not per access
        cache=cache,
        accesses=state.count,
        end_time=state.end,
        stats=cache.stats_snapshot(),
    )


def drive_cache(
    cache: DRAMCacheBase,
    records,
    *,
    window: int = 16,
    min_gap: int = 1,
    cycles_per_instruction: float = 0.6,
    streams: int = 4,
    mlp: float = 2.2,
    warmup: int = 0,
    backend: str | None = None,
) -> DriveResult:
    """Feed (address, is_write, icount) records with bounded outstanding.

    ``records`` may be a :class:`~repro.workloads.generator.TraceChunk`,
    an iterable of chunks, a :class:`~repro.workloads.trace.MultiProgramTrace`
    (both take the batched fast path), or any iterable of per-record
    tuples (compatibility path). All forms produce identical results for
    the same record stream.

    ``warmup`` > 0 drops all statistics gathered during the first that
    many records (cache contents and predictor training are kept).

    Arrival pacing is closed-loop, mirroring what real cores do:

    * compute time — the per-core instruction gaps carried by the trace,
      scaled by CPI and divided across the merged streams;
    * stall feedback — each read's latency throttles subsequent issue by
      ``latency / (mlp * streams)``, the aggregate of the per-core
      blocking the interval core model applies; and
    * ``window`` caps in-flight requests (MSHR backpressure), stalling
      issue until the *earliest-completing* outstanding request retires
      (no head-of-line blocking on a slow miss).

    Without the stall feedback an intensive mix would offer load far
    beyond what its cores could generate once they start missing, and
    every scheme would drown in queueing that the paper's closed-loop
    GEM5 cores never produce.

    ``backend`` selects the drive engine (``scalar`` | ``vectorized``);
    None resolves ``REPRO_BACKEND`` and defaults to the scalar
    reference kernel. See :mod:`repro.harness.backends`.
    """
    kwargs = dict(
        window=window,
        min_gap=min_gap,
        cycles_per_instruction=cycles_per_instruction,
        streams=streams,
        mlp=mlp,
        warmup=warmup,
    )
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND") or "scalar"
    # Observability tap: one guard per *drive* (tens of thousands of
    # records), never per record — the disabled path is the exact
    # pre-instrumentation code, so results and throughput are untouched.
    tracer = get_tracer()
    if tracer.enabled:
        start = time.perf_counter()
        result = _dispatch_drive(cache, records, kwargs, backend)
        _tap_drive(tracer, cache, result, time.perf_counter() - start)
        return result
    return _dispatch_drive(cache, records, kwargs, backend)


def _dispatch_drive(
    cache: DRAMCacheBase, records, kwargs: dict, backend: str = "scalar"
) -> DriveResult:
    """Route records to the batched fast path or the tuple loop."""
    if backend != "scalar":
        from repro.harness.backends import drive_with_backend

        return drive_with_backend(backend, cache, records, kwargs)
    window = kwargs["window"]
    min_gap = kwargs["min_gap"]
    cycles_per_instruction = kwargs["cycles_per_instruction"]
    streams = kwargs["streams"]
    mlp = kwargs["mlp"]
    warmup = kwargs["warmup"]
    if isinstance(records, TraceChunk):
        return _drive_fast(cache, (records,), **kwargs)
    if isinstance(records, MultiProgramTrace):
        return _drive_fast(cache, records.merged_chunks(), **kwargs)

    inflight: list[int] = []
    now = 0.0
    count = 0
    pace = cycles_per_instruction / max(1, streams)
    stall_scale = 1.0 / (mlp * max(1, streams))
    end = 0
    issued = 0
    for address, is_write, icount in records:
        issued += 1
        if warmup and issued == warmup:
            # End of warm-up: discard statistics, keep contents/training
            # (the paper fast-forwards 10B instructions before timing).
            cache.reset_stats()
        now += max(min_gap, icount * pace)
        if len(inflight) >= window:
            earliest = heapq.heappop(inflight)
            if earliest > now:
                now = float(earliest)
        result = cache.access(int(address), int(now), is_write=bool(is_write))
        if not is_write:
            now += result.latency * stall_scale
        heapq.heappush(inflight, result.complete)
        if result.complete > end:
            end = result.complete
        count += 1
    return DriveResult(
        cache=cache, accesses=count, end_time=end, stats=cache.stats_snapshot()
    )


def _tap_drive(tracer, cache: DRAMCacheBase, result: DriveResult, wall: float) -> None:
    """Report one finished drive to the tracer and metrics registry.

    Pull-based: copies counters the simulation already maintains, so
    enabling tracing cannot perturb results (asserted by the
    byte-identity tests and the perfbench ``traced`` mode).
    """
    per_sec = result.accesses / wall if wall > 0 else 0.0
    tracer.emit(
        "point",
        "drive",
        scheme=getattr(cache, "name", "?"),
        records=result.accesses,
        wall_s=round(wall, 6),
        records_per_sec=round(per_sec, 1),
        end_time=result.end_time,
        hit_rate=result.stats.get("hit_rate"),
        stack_rbh=result.stats.get("stack_rbh"),
    )
    registry = get_metrics()
    registry.add("drive.count")
    registry.add("drive.records", result.accesses)
    registry.observe("drive.wall_s", wall)
    registry.observe("drive.records_per_sec", per_sec)
    cache.report_metrics(registry)


def run_scheme_on_mix(
    scheme: str,
    mix_name: str,
    *,
    setup: ExperimentSetup | None = None,
    bimodal_config: BiModalConfig | None = None,
    window: int = 16,
    warmup_fraction: float = 0.5,
    backend: str | None = None,
) -> DriveResult:
    """Build scheme + mix trace, drive to completion, return the result.

    ``backend`` selects the drive engine explicitly (``scalar`` |
    ``vectorized``); ``None`` defers to ``setup.backend``, then to
    ``REPRO_BACKEND``/scalar, same as :func:`drive_cache`. The API
    facade sets the setup's backend from the request, so a request's
    backend never depends on ambient process state.
    """
    setup = setup or ExperimentSetup()
    if backend is None:
        backend = setup.backend or None
    if mix_name not in setup.mixes():
        raise ValueError(
            f"unknown mix {mix_name!r} for {setup.num_cores} cores"
        )
    system = setup.system
    total = setup.accesses_per_core * setup.num_cores
    tracer = get_tracer()
    with tracer.span(
        "cell", scheme=scheme, mix=mix_name, cores=setup.num_cores,
        seed=setup.seed,
    ) as span:
        timer = SectionTimer()
        with timer.section("build"):
            cache = build_cache(
                scheme,
                system,
                bimodal_config=bimodal_config,
                scale=setup.scale,
                adaptation_interval=max(1_000, total // 150),
            )
        with timer.section("trace"):
            records = setup.trace_records(mix_name)
        with timer.section("drive"):
            result = drive_cache(
                cache,
                records,
                window=window,
                streams=setup.num_cores,
                warmup=int(total * warmup_fraction),
                backend=backend,
            )
        if tracer.enabled:
            span.update(timer.as_attrs())
            span["records"] = result.accesses
            span["hit_rate"] = result.stats.get("hit_rate")
    return result
