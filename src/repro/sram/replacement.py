"""Replacement policies for set-associative structures.

Three policies cover everything the paper's system needs:

* ``LRU`` — conventional recency stack, used by the SRAM hierarchy (L1,
  LLSC) and by structures like the ATCache tag cache;
* ``Random`` — seeded pseudo-random victim choice;
* ``RandomNotRecent`` — the Bi-Modal cache's policy (Section III-D1):
  randomly replace a way that is *not* one of the top-2 MRU ways, as
  identified by the way locator; when no recency information is available
  for the set, fall back to pure random.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence

__all__ = ["ReplacementPolicy", "LRU", "Random", "RandomNotRecent", "make_policy"]


class ReplacementPolicy(ABC):
    """Chooses a victim way among currently valid candidate ways."""

    @abstractmethod
    def victim(
        self,
        candidates: Sequence[int],
        *,
        last_use: Sequence[int] | None = None,
        protected: frozenset[int] | set[int] = frozenset(),
    ) -> int:
        """Return the way to evict.

        ``candidates`` are the evictable way indices; ``last_use`` (aligned
        with candidates) carries recency timestamps where tracked;
        ``protected`` holds ways that should survive if any alternative
        exists (e.g. top-2 MRU ways from the way locator).
        """


class LRU(ReplacementPolicy):
    """Evict the least-recently-used candidate (requires timestamps)."""

    def victim(self, candidates, *, last_use=None, protected=frozenset()):
        if not candidates:
            raise ValueError("no candidates to evict")
        if last_use is None:
            raise ValueError("LRU requires last_use timestamps")
        order = sorted(range(len(candidates)), key=lambda i: last_use[i])
        for idx in order:
            if candidates[idx] not in protected:
                return candidates[idx]
        return candidates[order[0]]


class Random(ReplacementPolicy):
    """Seeded uniform random victim."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def victim(self, candidates, *, last_use=None, protected=frozenset()):
        if not candidates:
            raise ValueError("no candidates to evict")
        unprotected = [way for way in candidates if way not in protected]
        pool = unprotected or list(candidates)
        return pool[self._rng.randrange(len(pool))]


class RandomNotRecent(Random):
    """Random among non-MRU ways; alias that documents the paper's policy.

    Identical mechanics to :class:`Random` — the caller passes the top-2
    MRU ways (from the way locator, when it has them for this set) via
    ``protected``. With an empty ``protected`` this degrades to pure
    random, matching the paper's fallback when the locator holds no
    entries for the set.
    """


def make_policy(name: str, *, seed: int = 0) -> ReplacementPolicy:
    """Factory: 'lru' | 'random' | 'random_not_recent'."""
    table = {
        "lru": lambda: LRU(),
        "random": lambda: Random(seed),
        "random_not_recent": lambda: RandomNotRecent(seed),
    }
    try:
        return table[name]()
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}") from None
