"""Rule ``scheme-registry`` — every cache organization is reachable.

The scheme registry (PR 2) replaced the ``build_cache`` if/elif chain;
since then the CLI, grids and perfbench all resolve schemes by name.
A concrete ``DRAMCacheBase`` subclass that never reaches
``register_scheme`` is dead weight the harness silently cannot
evaluate — and one that skips the ``_access_fast``/``self._hit``
contract breaks the accounting shell for every caller. This rule
checks, project-wide:

* every concrete subclass of the configured scheme base (a class that
  overrides ``_access_fast``) is instantiated somewhere in a module
  that calls ``register_scheme`` (directly in a lambda or inside a
  builder helper);
* the override takes the contract signature
  ``(self, address, now, is_write)``;
* the class assigns the ``self._hit`` scratch attribute somewhere, so
  the base accounting shell never reads a stale outcome.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.model import ProjectModel, Violation
from repro.analysis.rules import Rule, register_rule

_CONTRACT_ARGS = ("self", "address", "now", "is_write")


@register_rule
class SchemeRegistryRule(Rule):
    name = "scheme-registry"
    version = 1
    description = (
        "concrete DRAMCacheBase subclasses must be registered via "
        "register_scheme and honour the _access_fast/_hit contract"
    )
    rationale = (
        "The CLI, grids and perfbench resolve cache organizations by "
        "name through the scheme registry. A concrete subclass that "
        "never reaches register_scheme is dead weight the harness "
        "cannot evaluate; one that deviates from the _access_fast "
        "signature or never assigns the self._hit scratch attribute "
        "breaks the accounting shell for every caller."
    )
    example_bad = """\
class SneakyCache(DRAMCacheBase):
    def _access_fast(self, address):
        return address in self.lines
"""
    example_good = """\
class DirectCache(DRAMCacheBase):
    def _access_fast(self, address, now, is_write):
        self._hit = address in self.lines
        return 1 if self._hit else 40
"""

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        base = project.config.scheme_base
        if not base:
            return
        have_registry = bool(project.registry_files)
        for info in project.classes:
            if not project.is_subclass_of(info, base):
                continue
            hook = info.methods.get("_access_fast")
            if hook is None:
                continue  # abstract/intermediate organization
            source = info.source
            if have_registry and info.name not in project.registry_instantiated:
                yield source.violation(
                    self.name, info.node,
                    f"{info.name} is a concrete {base} subclass but is never "
                    "instantiated in a register_scheme module; register it "
                    "so the CLI and grids can reach it",
                )
            args = tuple(arg.arg for arg in hook.args.args)
            if args != _CONTRACT_ARGS:
                yield source.violation(
                    self.name, hook,
                    f"{info.name}._access_fast signature {args} deviates "
                    f"from the contract {_CONTRACT_ARGS}",
                )
            if not info.assigns_self_attr("_hit"):
                yield source.violation(
                    self.name, info.node,
                    f"{info.name} never assigns self._hit; the accounting "
                    "shell would record a stale hit/miss outcome",
                )
