"""Incremental lint cache: content-hash-keyed facts and full-run replay.

Two layers, both stored as JSON under ``.simlint-cache/`` (gitignored):

* **Full-run replay** — the complete findings list, keyed by a digest
  over everything that can change the output: the cache schema, the
  facts-extraction version, every active rule's ``(name, version)``
  pair, the resolved :class:`LintConfig`, and the sorted
  ``(relative path, content hash)`` list of every scanned file. On an
  unchanged tree the engine replays the stored findings without
  parsing a single module — that is the ≥5x warm-run win the CI gate
  measures.
* **Per-file facts** — the JSON form of one module's
  :class:`~repro.analysis.flow.ModuleFacts`, keyed by the file's
  content hash *and* its relative path (so a renamed file misses: the
  facts embed module names derived from the path). When only a few
  files changed, the others skip dataflow extraction.

Robustness rules: every write is atomic (tmp + ``os.replace``), every
unreadable or structurally wrong entry is a silent miss, and a
``CACHEDIR.TAG`` marks the directory for backup tools. Corruption can
therefore cost time, never correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import fields
from pathlib import Path

from repro.analysis.model import Violation

__all__ = ["CACHE_SCHEMA", "LintCache", "hash_bytes"]

#: Bump when the on-disk layout or the replayed-result shape changes.
CACHE_SCHEMA = 1

#: Full-run entries kept per cache directory (LRU by mtime). Branch
#: switching flips between a handful of tree states; one entry each is
#: enough, and the bound keeps the directory from growing without limit.
_MAX_RUNS = 32


def hash_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _violation_to_dict(violation: Violation) -> dict:
    return {
        "rule": violation.rule,
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
        "message": violation.message,
        "snippet": violation.snippet,
    }


def _violation_from_dict(entry: dict) -> Violation:
    return Violation(
        rule=entry["rule"],
        path=entry["path"],
        line=int(entry["line"]),
        col=int(entry["col"]),
        message=entry["message"],
        snippet=entry.get("snippet", ""),
    )


class LintCache:
    """One cache directory; see the module docstring for the layout."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.runs_dir = self.directory / "runs"
        self.facts_dir = self.directory / "facts"

    # -- keys --------------------------------------------------------------
    @staticmethod
    def config_digest(config) -> str:
        parts = {f.name: getattr(config, f.name) for f in fields(config)}
        return hash_bytes(
            json.dumps(parts, sort_keys=True, default=list).encode()
        )

    @staticmethod
    def rules_digest(rules) -> str:
        from repro.analysis.flow import FACTS_VERSION

        catalog = sorted((rule.name, rule.version) for rule in rules.values())
        payload = {
            "schema": CACHE_SCHEMA,
            "facts": FACTS_VERSION,
            "rules": catalog,
        }
        return hash_bytes(json.dumps(payload, sort_keys=True).encode())

    def run_key(
        self, file_digests: list[tuple[str, str]], rules, config
    ) -> str:
        payload = {
            "rules": self.rules_digest(rules),
            "config": self.config_digest(config),
            "files": sorted(file_digests),
        }
        return hash_bytes(json.dumps(payload, sort_keys=True).encode())

    @staticmethod
    def facts_key(rel: str, content_digest: str) -> str:
        from repro.analysis.flow import FACTS_VERSION

        return hash_bytes(
            f"{CACHE_SCHEMA}:{FACTS_VERSION}:{rel}:{content_digest}".encode()
        )

    # -- storage helpers ---------------------------------------------------
    def _ensure_layout(self) -> None:
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self.facts_dir.mkdir(parents=True, exist_ok=True)
        tag = self.directory / "CACHEDIR.TAG"
        if not tag.exists():
            self._atomic_write(
                tag,
                "Signature: 8a477f597d28d172789f06886806bc55\n"
                "# simlint incremental cache; safe to delete.\n",
            )

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)

    @staticmethod
    def _read_json(path: Path) -> dict | None:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return document if isinstance(document, dict) else None

    # -- full-run replay ---------------------------------------------------
    def load_run(self, key: str) -> "object | None":
        """The replayed :class:`LintResult` for ``key``, or None."""
        from repro.analysis.engine import LintResult

        document = self._read_json(self.runs_dir / f"{key}.json")
        if document is None or document.get("key") != key:
            return None
        try:
            violations = [
                _violation_from_dict(entry) for entry in document["violations"]
            ]
            result = LintResult(
                violations=violations,
                files_scanned=int(document["files_scanned"]),
                rules_run=tuple(document["rules_run"]),
                suppressed=int(document["suppressed"]),
                cache_hit=True,
            )
        except (KeyError, TypeError, ValueError):
            return None
        # Freshen mtime so LRU pruning keeps live entries.
        try:
            os.utime(self.runs_dir / f"{key}.json")
        except OSError:
            pass
        return result

    def store_run(self, key: str, result) -> None:
        try:
            self._ensure_layout()
        except OSError:
            return
        document = {
            "key": key,
            "violations": [_violation_to_dict(v) for v in result.violations],
            "files_scanned": result.files_scanned,
            "rules_run": list(result.rules_run),
            "suppressed": result.suppressed,
        }
        self._atomic_write(
            self.runs_dir / f"{key}.json", json.dumps(document, sort_keys=True)
        )
        self._prune_runs()

    def _prune_runs(self) -> None:
        try:
            entries = sorted(
                self.runs_dir.glob("*.json"),
                key=lambda p: p.stat().st_mtime,
                reverse=True,
            )
        except OSError:
            return
        for stale in entries[_MAX_RUNS:]:
            try:
                stale.unlink()
            except OSError:
                pass

    # -- per-file facts ----------------------------------------------------
    def load_facts(self, rel: str, content_digest: str):
        from repro.analysis.flow import ModuleFacts

        key = self.facts_key(rel, content_digest)
        document = self._read_json(self.facts_dir / f"{key}.json")
        if document is None:
            return None
        try:
            facts = ModuleFacts.from_dict(document)
        except (KeyError, TypeError, ValueError):
            return None
        return facts if facts.rel == rel else None

    def store_facts(self, rel: str, content_digest: str, facts) -> None:
        try:
            self._ensure_layout()
        except OSError:
            return
        key = self.facts_key(rel, content_digest)
        self._atomic_write(
            self.facts_dir / f"{key}.json",
            json.dumps(facts.to_dict(), sort_keys=True),
        )
