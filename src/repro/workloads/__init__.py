"""Synthetic multiprogrammed workloads (substitute for SPEC traces)."""

from repro.workloads.generator import ProgramTrace, TraceChunk
from repro.workloads.mixes import (
    EIGHT_CORE_MIXES,
    QUAD_CORE_MIXES,
    SIXTEEN_CORE_MIXES,
    WorkloadMix,
    get_mix,
    mixes_for_cores,
)
from repro.workloads.profile import PROGRAM_LIBRARY, ProgramProfile, program
from repro.workloads.trace import (
    CORE_ADDRESS_STRIDE,
    MultiProgramTrace,
    TraceRecord,
)
from repro.workloads.tracefile import SavedTrace, load_trace, replay, save_trace

__all__ = [
    "ProgramTrace",
    "TraceChunk",
    "EIGHT_CORE_MIXES",
    "QUAD_CORE_MIXES",
    "SIXTEEN_CORE_MIXES",
    "WorkloadMix",
    "get_mix",
    "mixes_for_cores",
    "PROGRAM_LIBRARY",
    "ProgramProfile",
    "program",
    "CORE_ADDRESS_STRIDE",
    "MultiProgramTrace",
    "TraceRecord",
    "SavedTrace",
    "load_trace",
    "replay",
    "save_trace",
]
