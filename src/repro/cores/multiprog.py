"""Multiprogrammed execution: cores + shared DRAM cache + off-chip memory.

Reproduces the paper's measurement protocol: every program runs in the
multiprogrammed mix (sharing the DRAM cache and memory channels), and
again standalone with identical per-core configuration; ANTT is the mean
per-program slowdown (Section IV). Interleaving follows each core's own
retirement clock, so memory-intensive programs pressure the shared cache
exactly in proportion to their progress.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Callable

from repro.common.config import CoreConfig
from repro.cores.interval import IntervalCore
from repro.cores.metrics import antt
from repro.dramcache.base import DRAMCacheBase
from repro.workloads.generator import ProgramTrace
from repro.workloads.mixes import WorkloadMix
from repro.workloads.trace import CORE_ADDRESS_STRIDE

__all__ = ["RunResult", "MultiProgramRunner", "run_antt"]

CacheFactory = Callable[[], DRAMCacheBase]
"""Builds a fresh DRAM cache *with its own off-chip controller behind it*."""


@dataclass
class RunResult:
    """Outcome of one (multiprogrammed or standalone) run."""

    per_core_cycles: list[float]
    cores: list[IntervalCore]
    cache: DRAMCacheBase

    @property
    def total_instructions(self) -> int:
        return sum(core.instructions for core in self.cores)


class MultiProgramRunner:
    """Drives a workload mix through a shared DRAM cache."""

    def __init__(
        self,
        mix: WorkloadMix,
        cache_factory: CacheFactory,
        *,
        core_config: CoreConfig | None = None,
        accesses_per_core: int = 50_000,
        seed: int = 1,
        footprint_scale: float = 1.0,
        intensity_scale: float = 1.0,
        warmup_fraction: float = 0.3,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.mix = mix.scaled(footprint_scale) if footprint_scale != 1.0 else mix
        self.mix = self.mix.with_intensity_scale(intensity_scale)
        self.cache_factory = cache_factory
        self.core_config = core_config or CoreConfig()
        self.accesses_per_core = accesses_per_core
        self.seed = seed
        self.warmup_fraction = warmup_fraction

    # ------------------------------------------------------------------
    def _drive(self, program_indices: list[int]) -> RunResult:
        """Run the given subset of the mix's programs on a fresh cache."""
        cache = self.cache_factory()
        cores = [IntervalCore(i, self.core_config) for i in program_indices]
        streams = []
        for slot, prog_idx in enumerate(program_indices):
            trace = ProgramTrace(
                self.mix.programs[prog_idx],
                seed=self.seed + prog_idx,
                base_address=prog_idx * CORE_ADDRESS_STRIDE,
            )
            streams.append(iter_records(trace, self.accesses_per_core))

        # The heap is keyed on each core's *next access arrival time*
        # (clock + compute gap), so requests reach the shared memory
        # system in global time order even when core clocks diverge —
        # a low-intensity core running far ahead must never stamp bank
        # state that earlier-in-time requests from slower cores then
        # queue behind.
        heap: list[tuple[float, int, tuple]] = []
        for slot in range(len(cores)):
            record = next(streams[slot], None)
            if record is not None:
                address, is_write, icount = record
                arrival = cores[slot].cycles + icount * self.core_config.base_cpi
                heapq.heappush(heap, (arrival, slot, record))
        # Warm-up protocol (Section IV): the core clocks ANTT is computed
        # from cover only each core's *own* measured region — the first
        # ``warmup_fraction`` of its accesses fills caches and trains
        # predictors. Per-core marks matter because heterogeneous paces
        # mean cores cross their warm-up points at very different global
        # times. Cache statistics reset once, at the aggregate boundary.
        total = self.accesses_per_core * len(cores)
        global_warm = int(total * self.warmup_fraction)
        per_core_warm = int(self.accesses_per_core * self.warmup_fraction)
        served_total = 0
        served = [0] * len(cores)
        cycle_marks = [0.0] * len(cores)
        while heap:
            _, slot, record = heapq.heappop(heap)
            address, is_write, icount = record
            core = cores[slot]
            core.advance_compute(icount)
            result = cache.access(address, core.now, is_write=is_write)
            if is_write:
                core.note_write()
            else:
                core.apply_read_stall(result.latency)
            served_total += 1
            served[slot] += 1
            if per_core_warm and served[slot] == per_core_warm:
                cycle_marks[slot] = core.cycles
            if global_warm and served_total == global_warm:
                cache.reset_stats()
            nxt = next(streams[slot], None)
            if nxt is not None:
                arrival = core.cycles + nxt[2] * self.core_config.base_cpi
                heapq.heappush(heap, (arrival, slot, nxt))
        return RunResult(
            per_core_cycles=[
                core.cycles - mark for core, mark in zip(cores, cycle_marks)
            ],
            cores=cores,
            cache=cache,
        )

    # ------------------------------------------------------------------
    def run_multiprogrammed(self) -> RunResult:
        return self._drive(list(range(self.mix.num_cores)))

    def run_standalone(self, program_index: int) -> RunResult:
        return self._drive([program_index])

    def run_antt(self) -> tuple[float, RunResult]:
        """(ANTT, multiprogrammed run result) per the paper's metric."""
        mp = self.run_multiprogrammed()
        standalone = [
            self.run_standalone(i).per_core_cycles[0]
            for i in range(self.mix.num_cores)
        ]
        return antt(mp.per_core_cycles, standalone), mp


def iter_records(trace: ProgramTrace, accesses: int):
    """Flatten a trace's chunks into (address, is_write, icount) tuples."""
    for chunk in trace.chunks(accesses):
        yield from chunk


def run_antt(
    mix: WorkloadMix,
    cache_factory: CacheFactory,
    **kwargs,
) -> tuple[float, RunResult]:
    """One-call ANTT measurement for a mix under a cache scheme."""
    runner = MultiProgramRunner(mix, cache_factory, **kwargs)
    return runner.run_antt()
