"""Workload mix tables (Table V analogue)."""

import pytest

from repro.workloads.mixes import (
    EIGHT_CORE_MIXES,
    QUAD_CORE_MIXES,
    SIXTEEN_CORE_MIXES,
    WorkloadMix,
    get_mix,
    mixes_for_cores,
)
from repro.workloads.profile import program


class TestTables:
    def test_quad_core_has_23_mixes(self):
        assert len(QUAD_CORE_MIXES) == 23
        assert all(m.num_cores == 4 for m in QUAD_CORE_MIXES.values())

    def test_eight_core_has_16_mixes(self):
        assert len(EIGHT_CORE_MIXES) == 16
        assert all(m.num_cores == 8 for m in EIGHT_CORE_MIXES.values())

    def test_sixteen_core_has_10_mixes(self):
        assert len(SIXTEEN_CORE_MIXES) == 10
        assert all(m.num_cores == 16 for m in SIXTEEN_CORE_MIXES.values())

    def test_intensity_spread(self):
        """Mixes span high and low memory intensity, like Table V."""
        marked = [m.is_memory_intensive for m in QUAD_CORE_MIXES.values()]
        assert any(marked) and not all(marked)

    def test_repeated_programs_are_salted(self):
        mix = QUAD_CORE_MIXES["Q5"]  # two stream_hi instances
        stream_salts = [
            p.seed_salt for p in mix.programs if p.name == "stream_hi"
        ]
        assert len(stream_salts) == 2
        assert stream_salts[0] != stream_salts[1]

    def test_utilization_extremes_present(self):
        """Q2 dense end, Q23 sparse end (Figure 2 / Figure 10 anchors)."""
        assert QUAD_CORE_MIXES["Q2"].mean_expected_utilization() > 7.0
        assert QUAD_CORE_MIXES["Q23"].mean_expected_utilization() < 4.0


class TestLookup:
    @pytest.mark.parametrize("name", ["Q1", "Q23", "E1", "E16", "S1", "S10"])
    def test_get_mix(self, name):
        assert get_mix(name).name == name

    def test_unknown_mix(self):
        with pytest.raises(ValueError):
            get_mix("Z9")

    def test_mixes_for_cores(self):
        assert set(mixes_for_cores(4)) == set(QUAD_CORE_MIXES)
        assert set(mixes_for_cores(8)) == set(EIGHT_CORE_MIXES)
        assert set(mixes_for_cores(16)) == set(SIXTEEN_CORE_MIXES)

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            mixes_for_cores(2)


class TestScaling:
    def test_scaled_mix(self):
        mix = get_mix("Q1").scaled(16)
        for scaled, original in zip(mix.programs, get_mix("Q1").programs):
            assert scaled.footprint_mb == pytest.approx(original.footprint_mb / 16)

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMix(name="empty", programs=())


def test_composed_mixes_inherit_programs():
    """E mixes are pairs of Q mixes over the same program population."""
    e1 = EIGHT_CORE_MIXES["E1"]
    q1_names = [p.name for p in QUAD_CORE_MIXES["Q1"].programs]
    q2_names = [p.name for p in QUAD_CORE_MIXES["Q2"].programs]
    assert [p.name for p in e1.programs] == q1_names + q2_names
    # salting makes same-named instances distinct
    assert program(e1.programs[0].name).footprint_mb == e1.programs[0].footprint_mb
