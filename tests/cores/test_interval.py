"""Interval core model tests."""

import pytest

from repro.common.config import CoreConfig
from repro.cores.interval import IntervalCore


@pytest.fixture
def core():
    return IntervalCore(0, CoreConfig(base_cpi=0.5, memory_level_parallelism=2.0))


class TestProgress:
    def test_compute_advances_by_cpi(self, core):
        core.advance_compute(1000)
        assert core.cycles == pytest.approx(500.0)
        assert core.instructions == 1000

    def test_read_stall_divided_by_mlp(self, core):
        core.apply_read_stall(200.0)
        assert core.cycles == pytest.approx(100.0)
        assert core.memory_stall_cycles == pytest.approx(100.0)
        assert core.reads == 1

    def test_writes_do_not_stall(self, core):
        core.note_write()
        assert core.cycles == 0.0
        assert core.writes == 1

    def test_now_is_integer_cycles(self, core):
        core.advance_compute(3)
        assert isinstance(core.now, int)
        assert core.now == 1


class TestMetrics:
    def test_cpi(self, core):
        core.advance_compute(1000)
        core.apply_read_stall(400.0)
        assert core.cpi == pytest.approx((500.0 + 200.0) / 1000)

    def test_cpi_empty(self, core):
        assert core.cpi == 0.0

    def test_stall_fraction(self, core):
        core.advance_compute(1000)
        core.apply_read_stall(1000.0)
        assert core.stall_fraction == pytest.approx(0.5)

    def test_memory_bound_core_is_slower(self):
        fast = IntervalCore(0, CoreConfig())
        slow = IntervalCore(1, CoreConfig())
        for c in (fast, slow):
            c.advance_compute(10_000)
        for _ in range(100):
            slow.apply_read_stall(300.0)
        assert slow.cycles > fast.cycles
