"""repro.obs — observability for the experiment engine.

Zero-cost-when-disabled instrumentation shared by every layer of the
harness:

* :mod:`repro.obs.tracer` — structured JSONL span/point events
  (``REPRO_TRACE`` / ``--trace-out``);
* :mod:`repro.obs.metrics` — a process-wide registry of named
  counters/gauges/distributions that layers report into at span
  boundaries (pull-based taps, never per record);
* :mod:`repro.obs.profile` — ``perf_counter`` section timers and an
  opt-in per-cell ``cProfile`` wrapper (``REPRO_PROFILE``);
* :mod:`repro.obs.manifest` — run manifests written next to every
  experiment artifact (config hash, seed, git rev, env knobs).

See ``docs/observability.md`` for knobs, the event schema and example
``jq`` queries.
"""

from repro.obs.manifest import RunManifest, config_hash, git_revision, write_manifest
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.obs.profile import SectionTimer, profile_call, profile_dir
from repro.obs.tracer import (
    Tracer,
    configure,
    configure_from_env,
    get_tracer,
    install,
    trace_enabled,
)

__all__ = [
    "MetricsRegistry",
    "RunManifest",
    "SectionTimer",
    "Tracer",
    "config_hash",
    "configure",
    "configure_from_env",
    "get_metrics",
    "get_tracer",
    "git_revision",
    "install",
    "profile_call",
    "profile_dir",
    "set_metrics",
    "trace_enabled",
    "write_manifest",
]
