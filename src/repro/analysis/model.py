"""Data model shared by the simlint engine and its rules.

Three layers:

* :class:`Violation` — one finding, with a content fingerprint that
  survives line renumbering (the baseline matches on it);
* :class:`SourceFile` — a parsed module: source text, AST, per-line
  ``# simlint: off=<rule>`` suppressions and an import table so rules
  can resolve ``np.random`` / ``from random import randrange`` style
  references without guessing;
* :class:`ProjectModel` — the cross-file view (class hierarchy,
  dataclass inventory, scheme-registry instantiations) that the
  project-level rules (scheme-registry, parity, slots) query.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ClassInfo",
    "ImportMap",
    "ProjectModel",
    "SourceFile",
    "Violation",
]

#: Per-line suppression: ``# simlint: off`` (all rules) or
#: ``# simlint: off=rule-a,rule-b``. Anything after ``--`` on the same
#: comment is a free-form justification and is ignored by the matcher.
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*off(?:=(?P<rules>[A-Za-z0-9_,\- ]+?))?\s*(?:--|$)"
)


@dataclass(frozen=True, slots=True)
class Violation:
    """One finding: where, which rule, and why."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    snippet: str = ""  # stripped source line, for reports + fingerprints

    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching.

        Built from the rule, the file and the offending source line (not
        the line *number*), so pure renumbering never invalidates a
        baseline entry. Identical lines in one file share a fingerprint;
        the baseline matcher treats entries as a multiset to cope.
        """
        return f"{self.rule}|{self.path}|{self.snippet}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class ImportMap:
    """What each top-level name in a module refers to.

    ``modules`` maps local alias -> dotted module (``np`` -> ``numpy``);
    ``members`` maps local alias -> (module, original name) for
    ``from module import name [as alias]``.
    """

    __slots__ = ("modules", "members")

    def __init__(self, tree: ast.AST) -> None:
        self.modules: dict[str, str] = {}
        self.members: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.members[local] = (node.module, alias.name)

    def resolves_to_module(self, name: str, module: str) -> bool:
        """Does the local ``name`` refer to ``module`` (``import`` form)?"""
        return self.modules.get(name) == module

    def member_origin(self, name: str) -> tuple[str, str] | None:
        """(module, original name) when ``name`` came from a from-import."""
        return self.members.get(name)


class SourceFile:
    """A parsed module plus everything rules need to inspect it."""

    __slots__ = ("path", "rel", "pkgrel", "text", "lines", "tree",
                 "suppressions", "imports")

    def __init__(self, path: Path, rel: str, text: str, tree: ast.AST) -> None:
        self.path = path
        self.rel = rel
        self.pkgrel = _package_relative(rel)
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        self.suppressions = _parse_suppressions(self.lines)
        self.imports = ImportMap(tree)

    def is_suppressed(self, rule: str, line: int) -> bool:
        active = self.suppressions.get(line)
        return bool(active) and ("*" in active or rule in active)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def violation(
        self, rule: str, node: ast.AST | int, message: str, *, col: int | None = None
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node`` (or a line)."""
        if isinstance(node, int):
            line, column = node, 0
        else:
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0)
        return Violation(
            rule=rule,
            path=self.rel,
            line=line,
            col=col if col is not None else column,
            message=message,
            snippet=self.snippet(line),
        )

    def matches(self, pattern: str) -> bool:
        """fnmatch against the repo-relative or package-relative path."""
        from fnmatch import fnmatch

        return fnmatch(self.rel, pattern) or fnmatch(self.pkgrel, pattern)


def _package_relative(rel: str) -> str:
    """The path below the ``repro`` package, when there is one.

    ``src/repro/dram/bank.py`` -> ``dram/bank.py``; paths outside the
    package (tests, fixtures) fall back to the repo-relative path, so
    config globs can address either layout.
    """
    parts = rel.split("/")
    if "repro" in parts:
        below = parts[parts.index("repro") + 1:]
        if below:
            return "/".join(below)
    return rel


def _parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
    table: dict[int, set[str]] = {}
    for number, line in enumerate(lines, start=1):
        if "simlint" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        raw = match.group("rules")
        if raw is None:
            table[number] = {"*"}
        else:
            table[number] = {part.strip() for part in raw.split(",") if part.strip()}
    return table


@dataclass
class ClassInfo:
    """One class definition, as rules see it."""

    name: str
    source: SourceFile
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)  # simple (last-attr) names
    is_dataclass: bool = False
    dataclass_slots: bool = False
    has_slots_attr: bool = False

    @property
    def methods(self) -> dict[str, ast.FunctionDef]:
        return {
            item.name: item
            for item in self.node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    def assigns_self_attr(self, attr: str) -> bool:
        """Is ``self.<attr>`` assigned anywhere in the class body?"""
        for node in ast.walk(self.node):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == attr
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return True
        return False


def _simple_base_name(base: ast.expr) -> str | None:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Subscript):  # Generic[...] style
        return _simple_base_name(base.value)
    return None


def classify_class(source: SourceFile, node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(name=node.name, source=source, node=node)
    info.bases = [
        name for name in (_simple_base_name(b) for b in node.bases) if name
    ]
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = _simple_base_name(target) if not isinstance(target, ast.Name) else target.id
        if name == "dataclass":
            info.is_dataclass = True
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
                        info.dataclass_slots = bool(kw.value.value)
    for item in node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    info.has_slots_attr = True
        elif isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name) and item.target.id == "__slots__":
                info.has_slots_attr = True
    return info


class ProjectModel:
    """Cross-file facts: class hierarchy, dataclasses, registry calls.

    The flow layer (call graph + taint, :mod:`repro.analysis.flow`)
    hangs off this model lazily: ``facts`` extracts (or receives from
    the incremental cache) the per-module dataflow skeletons, ``graph``
    builds the project call graph once, and ``taint(sinks)`` memoizes
    one taint fixpoint per sink set so several rules can share it.
    """

    def __init__(self, files: list[SourceFile], config,
                 facts: "list | None" = None) -> None:
        self.files = files
        self.config = config
        self._by_rel = {source.rel: source for source in files}
        self._facts = facts
        self._graph = None
        self._taint: dict[int, object] = {}
        self.classes: list[ClassInfo] = []
        self._by_name: dict[str, list[ClassInfo]] = {}
        for source in files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    info = classify_class(source, node)
                    self.classes.append(info)
                    self._by_name.setdefault(info.name, []).append(info)
        self.dataclass_names = {c.name for c in self.classes if c.is_dataclass}
        self.registry_files = [
            source
            for source in files
            if any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "register_scheme"
                for node in ast.walk(source.tree)
            )
        ]
        self.registry_instantiated: set[str] = set()
        for source in self.registry_files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    self.registry_instantiated.add(node.func.id)

    def source_for(self, rel: str) -> SourceFile | None:
        return self._by_rel.get(rel)

    @property
    def facts(self) -> list:
        if self._facts is None:
            from repro.analysis.flow import extract_facts

            self._facts = [
                extract_facts(source.tree, source.rel, source.pkgrel)
                for source in self.files
            ]
        return self._facts

    @property
    def graph(self):
        if self._graph is None:
            from repro.analysis.flow import CallGraph

            self._graph = CallGraph(self.facts)
        return self._graph

    def taint(self, sinks: list):
        """Memoized :class:`~repro.analysis.flow.TaintAnalysis` per sink set."""
        key = id(sinks)
        if key not in self._taint:
            from repro.analysis.flow import TaintAnalysis

            self._taint[key] = TaintAnalysis(
                self.graph,
                sinks,
                sanitizer_globs=self.config.determinism_allow,
            )
        return self._taint[key]

    def lookup(self, name: str) -> list[ClassInfo]:
        return self._by_name.get(name, [])

    def is_subclass_of(self, info: ClassInfo, root: str) -> bool:
        """Does ``info``'s base chain (by simple name) reach ``root``?"""
        seen: set[str] = set()
        frontier = list(info.bases)
        while frontier:
            base = frontier.pop()
            if base == root:
                return True
            if base in seen:
                continue
            seen.add(base)
            for parent in self.lookup(base):
                frontier.extend(parent.bases)
        return False

    def has_ancestor_base(self, info: ClassInfo, names: set[str]) -> bool:
        """True when any (transitive) base carries one of ``names``."""
        return any(self.is_subclass_of(info, name) for name in names)
