"""Smoke tests for every experiment entry point (tiny configurations)."""

import pytest

import repro.harness.experiments as E
from repro.harness.runner import ExperimentSetup

TINY = ExperimentSetup(num_cores=4, accesses_per_core=2500)
TINY8 = ExperimentSetup(num_cores=8, accesses_per_core=1200)
MIXES = ["Q2", "Q7"]


class TestDesignSpace:
    def test_fig1_rows(self):
        rows = E.fig1_miss_rate_vs_block_size(
            setup=TINY, mix_names=MIXES, block_sizes=(64, 512)
        )
        assert [r["mix"] for r in rows] == ["Q2", "Q7", "mean"]
        for row in rows:
            assert 0.0 <= row["512B"] <= row["64B"] <= 1.0

    def test_fig2_distribution_sums_to_one(self):
        rows = E.fig2_block_utilization(setup=TINY, mix_names=["Q2"])
        total = sum(rows[0][f"u{level}"] for level in range(1, 9))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_fig5_mru_concentration(self):
        rows = E.fig5_mru_hits(setup=TINY, mix_names=["Q2"])
        assert 0.0 < rows[0]["top2"] <= 1.0


class TestLatency:
    def test_fig3_breakdown_totals(self):
        rows = E.fig3_latency_breakdown()
        for row in rows:
            assert row["total"] > 0
        by_case = {(r["scheme"], r["case"]): r["total"] for r in rows}
        # locator hit is the cheapest BiModal case
        assert (
            by_case[("BiModal", "way locator hit")]
            < by_case[("BiModal", "loc. miss, tag row hit")]
            < by_case[("BiModal", "loc. miss, tag row miss")]
        )

    def test_fig8c_rows(self):
        rows = E.fig8c_access_latency(
            setup=TINY, mix_names=["Q2"], schemes=("alloy", "bimodal")
        )
        assert rows[-1]["mix"] == "mean"
        assert rows[0]["alloy"] > 0
        assert "bimodal_vs_alloy" in rows[-1]


class TestPerformance:
    def test_fig7_antt(self):
        rows = E.fig7_antt(setup=TINY, mix_names=["Q1"])
        assert rows[0]["alloy"] >= 1.0
        assert rows[0]["bimodal"] >= 1.0
        assert rows[-1]["mix"] == "mean"

    def test_fig8b_hit_rates(self):
        rows = E.fig8b_hit_rate(setup=TINY, mix_names=["Q2"])
        row = rows[0]
        assert row["fixed512"] > row["alloy"]
        assert row["bimodal"] > row["alloy"]


class TestBandwidth:
    def test_fig9a_savings(self):
        rows = E.fig9a_wasted_bandwidth(setup=TINY8, mix_names=["E5"])
        assert rows[-1]["mix"] == "total"
        assert rows[0]["fixed512_wasted_mb"] >= rows[0]["bimodal_wasted_mb"] * 0.5

    def test_fig9b_rbh(self):
        rows = E.fig9b_metadata_rbh(setup=TINY, mix_names=["Q2"])
        row = rows[0]
        assert 0.0 <= row["colocated_rbh"] <= 1.0
        assert 0.0 <= row["separate_rbh"] <= 1.0

    def test_fig9c_k_sweep(self):
        rows = E.fig9c_way_locator_hit_rate(
            setup=TINY, mix_names=["Q2"], k_values=(12, 14)
        )
        assert set(rows[0]) >= {"mix", "K12", "K14"}
        assert rows[0]["K14"] >= rows[0]["K12"] - 0.05

    def test_fig10_fractions(self):
        rows = E.fig10_small_block_fraction(setup=TINY, mix_names=MIXES)
        for row in rows:
            assert 0.0 <= row["small_fraction"] <= 1.0


class TestTables:
    def test_table1_matrix(self):
        rows = E.table1_feature_matrix()
        attrs = {r["attribute"] for r in rows}
        assert {"block_size", "metadata", "hit_rate"} <= attrs
        bimodal = {r["attribute"]: r["bimodal"] for r in rows}
        assert bimodal["block_size"] == "512B+64B"
        assert bimodal["metadata"] == "DRAM"

    def test_table3_matches_paper(self):
        rows = E.table3_way_locator_storage()
        assert len(rows) == 12
        for row in rows:
            assert row["model_kb"] == pytest.approx(row["paper_kb"], rel=0.15)
            assert row["model_cycles"] == row["paper_cycles"]


class TestEnergyPrefetchSensitivity:
    def test_fig11_energy(self):
        rows = E.fig11_energy(setup=TINY8, mix_names=["E1"])
        assert rows[0]["alloy_uj"] > 0
        assert rows[-1]["mix"] == "mean"

    def test_table6_prefetch(self):
        rows = E.table6_prefetch(setup=TINY, mix_names=["Q1"], degrees=(1,))
        assert rows[0]["N"] == 1
        assert "pref_normal_pct" in rows[0]

    def test_fig12_variants(self):
        rows = E.fig12_sensitivity(setup=TINY, mix_names=["Q1"])
        assert len(rows) == 6
        labels = {r["config"] for r in rows}
        assert "BiModal(128M-1024-2)" in labels

    def test_extensions(self):
        rows = E.victim_buffer_study(setup=TINY, mix_names=["Q7"])
        assert rows[-1]["mix"] == "total"
        assert 0.0 <= rows[0]["victim_hit_fraction"] <= 1.0
        rows = E.space_utilization_comparison(setup=TINY, mix_names=["Q7"])
        assert 0.0 <= rows[0]["bimodal_space_util"] <= 1.0
        rows = E.controller_comparison(setup=TINY, mix_names=["Q7"])
        assert {"demand_hit", "dueling_hit"} <= set(rows[0])

    def test_ablations(self):
        assert len(E.ablation_threshold(setup=TINY, thresholds=(5,))) == 1
        assert len(E.ablation_weight(setup=TINY, weights=(0.75,))) == 1
        assert len(E.ablation_sampling(setup=TINY, rates=(2,))) == 1
        rows = E.ablation_parallel_tag(setup=TINY, mix_names=["Q2"])
        assert rows[0]["serial_latency"] >= rows[0]["parallel_latency"] * 0.9
