"""Lightweight statistics primitives shared by every simulator component.

The paper reports rates (hit rates, row-buffer hit rates, predictor
accuracies), averages (access latency, miss penalty) and distributions
(block utilization, MRU hit position). These helpers provide exactly
those aggregations with zero external dependencies so that inner-loop
accounting stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Counter", "RunningMean", "Histogram", "RateStat", "StatGroup"]


@dataclass(slots=True)
class Counter:
    """A named monotonic event counter."""

    value: int = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


@dataclass(slots=True)
class RunningMean:
    """Streaming mean/min/max without storing samples."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def add(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        if sample < self.minimum:
            self.minimum = sample
        if sample > self.maximum:
            self.maximum = sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "RunningMean") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")


@dataclass(slots=True)
class Histogram:
    """Integer-bucket histogram (e.g. utilization levels 1..8, MRU ranks)."""

    buckets: dict[int, int] = field(default_factory=dict)

    def add(self, bucket: int, amount: int = 1) -> None:
        self.buckets[bucket] = self.buckets.get(bucket, 0) + amount

    @property
    def total(self) -> int:
        return sum(self.buckets.values())

    def fraction(self, bucket: int) -> float:
        total = self.total
        return self.buckets.get(bucket, 0) / total if total else 0.0

    def fractions(self) -> dict[int, float]:
        total = self.total
        if not total:
            return {}
        return {k: v / total for k, v in sorted(self.buckets.items())}

    def cumulative_fraction(self, upto: int) -> float:
        """Fraction of mass in buckets <= ``upto``."""
        total = self.total
        if not total:
            return 0.0
        return sum(v for k, v in self.buckets.items() if k <= upto) / total

    def reset(self) -> None:
        self.buckets.clear()


@dataclass(slots=True)
class RateStat:
    """Hits/total rate with explicit miss accounting."""

    hits: int = 0
    misses: int = 0

    def record(self, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def rate(self) -> float:
        total = self.total
        return self.hits / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        total = self.total
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class StatGroup:
    """A named bag of stats with a uniform ``snapshot()`` for reporting.

    Components register their counters once and the harness converts the
    whole tree into plain dictionaries for table rendering.
    """

    __slots__ = ("name", "_stats")

    def __init__(self, name: str) -> None:
        self.name = name
        self._stats: dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        return self._register(name, Counter())

    def mean(self, name: str) -> RunningMean:
        return self._register(name, RunningMean())

    def histogram(self, name: str) -> Histogram:
        return self._register(name, Histogram())

    def rate(self, name: str) -> RateStat:
        return self._register(name, RateStat())

    def _register(self, name: str, stat):
        if name in self._stats:
            raise ValueError(f"duplicate stat {name!r} in group {self.name!r}")
        self._stats[name] = stat
        return stat

    def __getitem__(self, name: str):
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def snapshot(self) -> dict[str, object]:
        """Flatten to JSON-friendly values for reporting."""
        out: dict[str, object] = {}
        for name, stat in self._stats.items():
            if isinstance(stat, Counter):
                out[name] = stat.value
            elif isinstance(stat, RunningMean):
                out[name] = {"count": stat.count, "mean": stat.mean}
            elif isinstance(stat, RateStat):
                out[name] = {
                    "hits": stat.hits,
                    "misses": stat.misses,
                    "rate": stat.rate,
                }
            elif isinstance(stat, Histogram):
                out[name] = dict(sorted(stat.buckets.items()))
        return out

    def reset(self) -> None:
        for stat in self._stats.values():
            stat.reset()  # type: ignore[union-attr]
