"""Drive-loop throughput measurement and the BENCH_perf.json record.

The simulator's capacity for paper-scale sweeps is set by one number:
merged-trace records simulated per second. This module measures it on
the standard 4-core bimodal drive in three modes —

* ``legacy`` — the pre-batching protocol: regenerate the merged trace
  and feed :func:`drive_cache` one ``(address, is_write, icount)`` tuple
  at a time (the compatibility path kept in the runner),
* ``fast`` — the current protocol: cached record arrays through the
  batched drive loop, and
* ``traced`` — the fast protocol with the observability tracer enabled
  (events discarded), so tracer overhead is tracked across PRs,
* ``mrc`` — the ghost estimation pass of the design-space driver
  (``repro.mrc``, docs/dse.md): trace records/sec through one
  all-points ghost pass, plus the driver's cost accounting
  (``full_sims_avoided``, ``dse_speedup``) in the history row,

and appends timestamped measurements to ``BENCH_perf.json`` so the
throughput history rides alongside the figure results. The drive modes
produce bit-identical statistics (asserted on every measurement);
wall-clock is the only difference. ``mrc`` is a different estimator,
not a drive protocol, so it is exempt from that identity check.

Every cell also carries a ``backend`` dimension (``scalar`` |
``vectorized``, see :mod:`repro.harness.backends`): the drive engine is
part of the cell identity, so the regression gate compares
(mode, scheme, mix, backend) cells only against their own history and
both engines stay protected independently. Gated runs always use at
least 3 repeats (best-of is what lands in the history, so a single
noisy sample must never set or trip a baseline).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path

from repro.api.errors import EXIT_OK, EXIT_PERF_GATE, EXIT_USAGE

from repro.harness.runner import ExperimentSetup, build_cache, drive_cache
from repro.harness.schemes import available_schemes
from repro.obs import Tracer, install
from repro.workloads.mixes import mixes_for_cores

__all__ = [
    "ThroughputResult",
    "measure_drive_throughput",
    "measure_mrc_throughput",
    "append_bench_record",
    "gate_against_history",
    "main",
]

BENCH_FILE = "BENCH_perf.json"


@dataclass(frozen=True)
class ThroughputResult:
    """Best-of-N throughput of one drive mode."""

    mode: str
    scheme: str
    mix: str
    records: int
    best_seconds: float
    records_per_second: float
    repeats: int
    stats: dict
    # Allocation profile of one (untimed) instrumented run of the same
    # cell: tracemalloc peak and the number of gc collections it caused.
    alloc_peak_bytes: int = 0
    gc_collections: int = 0
    backend: str = "scalar"
    #: Mode-specific history columns (the ``mrc`` mode records its
    #: cost accounting here); merged verbatim into :meth:`row`.
    extra: dict = field(default_factory=dict)

    def row(self) -> dict:
        return {
            "mode": self.mode,
            "scheme": self.scheme,
            "mix": self.mix,
            "backend": self.backend,
            "records": self.records,
            "best_seconds": round(self.best_seconds, 4),
            "records_per_second": round(self.records_per_second, 1),
            "repeats": self.repeats,
            "alloc_peak_bytes": self.alloc_peak_bytes,
            "gc_collections": self.gc_collections,
            **self.extra,
        }


def _run_once(
    scheme: str,
    mix: str,
    setup: ExperimentSetup,
    mode: str,
    backend: str = "scalar",
) -> tuple[float, dict]:
    """One timed drive; returns (seconds, stats snapshot).

    The timed region covers the full experiment cell — cache build,
    trace acquisition and the drive — because that is the unit the
    figure grids repeat. ``legacy`` regenerates the trace and walks
    per-record tuples; ``fast`` takes the cached batched path.
    """
    total = setup.accesses_per_core * setup.num_cores
    warmup = total // 2
    sink = None
    previous = None
    if mode == "traced":
        # Tracer enabled, events discarded: measures instrumentation
        # overhead only, not disk throughput.
        sink = open(os.devnull, "w")
        previous = install(Tracer(enabled=True, stream=sink))
    try:
        start = time.perf_counter()
        cache = build_cache(scheme, setup.system, scale=setup.scale)
        if mode == "legacy":
            trace = setup.trace(mix)
            records = ((r.address, r.is_write, r.icount) for r in trace)
        elif mode in ("fast", "traced"):
            records = setup.trace_records(mix)
        else:
            raise ValueError(
                f"unknown mode {mode!r} (use 'legacy', 'fast' or 'traced')"
            )
        result = drive_cache(
            cache,
            records,
            window=16,
            streams=setup.num_cores,
            warmup=warmup,
            backend=backend,
        )
        elapsed = time.perf_counter() - start
    finally:
        if previous is not None:
            install(previous)
        if sink is not None:
            sink.close()
    if result.accesses != total:
        raise RuntimeError(
            f"drive consumed {result.accesses} records, expected {total}"
        )
    return elapsed, result.stats


def _measure_allocations(
    scheme: str,
    mix: str,
    setup: ExperimentSetup,
    mode: str,
    backend: str = "scalar",
) -> tuple[int, int]:
    """(tracemalloc peak bytes, gc collections) of one untimed run.

    Run separately from the timed repeats: tracemalloc slows the
    interpreter down severalfold, so the allocation profile must never
    share a run with a throughput sample.
    """
    gc.collect()
    before = sum(s["collections"] for s in gc.get_stats())
    tracemalloc.start()
    try:
        _run_once(scheme, mix, setup, mode, backend)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    after = sum(s["collections"] for s in gc.get_stats())
    return peak, after - before


def measure_drive_throughput(
    *,
    scheme: str = "bimodal",
    mix: str = "Q1",
    setup: ExperimentSetup | None = None,
    mode: str = "fast",
    repeats: int = 3,
    allocations: bool = True,
    backend: str = "scalar",
) -> ThroughputResult:
    """Best-of-``repeats`` records/sec for one (scheme, mix, mode,
    backend) cell."""
    setup = setup or ExperimentSetup(num_cores=4, accesses_per_core=15_000)
    total = setup.accesses_per_core * setup.num_cores
    best = float("inf")
    stats: dict = {}
    for _ in range(max(1, repeats)):
        elapsed, stats = _run_once(scheme, mix, setup, mode, backend)
        if elapsed < best:
            best = elapsed
    peak = collections = 0
    if allocations:
        peak, collections = _measure_allocations(
            scheme, mix, setup, mode, backend
        )
    return ThroughputResult(
        mode=mode,
        scheme=scheme,
        mix=mix,
        backend=backend,
        records=total,
        best_seconds=best,
        records_per_second=total / best if best else 0.0,
        repeats=max(1, repeats),
        stats=dict(stats),
        alloc_peak_bytes=peak,
        gc_collections=collections,
    )


def measure_mrc_throughput(
    *,
    mix: str = "Q1",
    setup: ExperimentSetup | None = None,
    repeats: int = 3,
    sample_rate: float = 1.0,
) -> ThroughputResult:
    """Best-of-``repeats`` trace records/sec through one ghost pass.

    The timed unit is :func:`repro.mrc.dse.dse_estimate_cell` — the
    estimation phase of ``repro dse``: every default design point's
    ghost driven over the mix's materialized address column in one
    O(trace) walk. ``extra`` records the driver's cost accounting for
    the pass: frontier size, full simulations avoided and the resulting
    speedup over the exhaustive grid (same formulas as
    ``run_design_space``), so both acceptance numbers land in the
    committed history.
    """
    from repro.mrc.dse import (
        DseEstimateCell,
        default_space,
        dse_estimate_cell,
        pareto_frontier,
    )

    setup = setup or ExperimentSetup(num_cores=4, accesses_per_core=15_000)
    space = default_space()
    cell = DseEstimateCell(
        mix=mix, setup=setup, space=space, sample_rate=sample_rate
    )
    total = setup.accesses_per_core * setup.num_cores
    best = float("inf")
    rows: list = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        rows = dse_estimate_cell(cell)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    rates = [h / a if a else 0.0 for h, a, _, _ in rows]
    frontier = pareto_frontier(list(space), rates)
    survivors = max(1, (len(frontier) + 1) // 2)
    spent = 0.25 * len(frontier) + survivors
    exhaustive = float(len(space))
    return ThroughputResult(
        mode="mrc",
        scheme="ghost",
        mix=mix,
        backend="scalar",
        records=total,
        best_seconds=best,
        records_per_second=total / best if best else 0.0,
        repeats=max(1, repeats),
        stats={
            "ghosts": len(space),
            "best_est_hit_rate": round(max(rates), 6) if rates else 0.0,
        },
        extra={
            "ghosts": len(space),
            "frontier_size": len(frontier),
            "full_sims_avoided": round(exhaustive - spent, 2),
            "dse_speedup": round(exhaustive / spent, 2) if spent else 0.0,
        },
    )


def append_bench_record(results: list[ThroughputResult], path: str | Path) -> dict:
    """Append one timestamped measurement entry to ``BENCH_perf.json``.

    The file holds a JSON list of entries (newest last); a missing or
    corrupt file starts a fresh history. Returns the entry written.
    """
    path = Path(path)
    history: list = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                history = loaded
        except (OSError, ValueError):
            history = []
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "measurements": [r.row() for r in results],
    }
    fast = next((r for r in results if r.mode == "fast"), None)
    legacy = next((r for r in results if r.mode == "legacy"), None)
    traced = next((r for r in results if r.mode == "traced"), None)
    if fast and legacy and legacy.records_per_second:
        entry["fast_over_legacy"] = round(
            fast.records_per_second / legacy.records_per_second, 3
        )
    if fast and traced and fast.records_per_second:
        # Observability overhead: 1.0 means tracer-on costs nothing.
        entry["traced_over_fast"] = round(
            traced.records_per_second / fast.records_per_second, 3
        )
    history.append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return entry


def gate_against_history(
    results: list[ThroughputResult],
    path: str | Path,
    *,
    threshold: float = 0.7,
    allow_missing: bool = False,
) -> int:
    """Regression gate: compare measurements to the committed history.

    For every measured cell, find the most recent entry in ``path``
    with the same (mode, scheme, mix, backend) — history rows written
    before the backend dimension existed count as ``scalar`` — and
    require
    ``measured >= threshold * committed`` records/sec. Prints the ratio
    either way; returns 4 (the CI perf-regression exit code) if any
    cell falls below, 0 otherwise. A cell with no committed baseline is
    a usage error (exit 2) — a silently skipped gate is worse than no
    gate — unless ``allow_missing`` is set (first run of a new scheme).
    """
    path = Path(path)
    history: list = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                history = loaded
        except (OSError, ValueError):
            history = []
    failed = False
    for result in results:
        baseline = None
        for entry in reversed(history):
            for row in entry.get("measurements", []):
                if (
                    row.get("mode") == result.mode
                    and row.get("scheme") == result.scheme
                    and row.get("mix") == result.mix
                    and row.get("backend", "scalar") == result.backend
                ):
                    baseline = row
                    break
            if baseline is not None:
                break
        cell = (
            f"{result.mode}/{result.scheme}/{result.mix}/{result.backend}"
        )
        committed = (baseline or {}).get("records_per_second") or 0.0
        if not committed:
            if allow_missing:
                print(f"perf gate: {cell}: no committed baseline, skipping")
                continue
            print(
                f"perf gate: error: no committed baseline for {cell} in"
                f" {path} (record one with --output, or pass"
                " --gate-allow-missing for a new cell's first run)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        ratio = result.records_per_second / committed
        verdict = "ok" if ratio >= threshold else "REGRESSION"
        print(
            f"perf gate: {cell}: {result.records_per_second:.0f} vs committed"
            f" {committed:.0f} records/sec -> {ratio:.2f}x"
            f" (threshold {threshold:.2f}x) {verdict}"
        )
        if ratio < threshold:
            failed = True
    return EXIT_PERF_GATE if failed else EXIT_OK


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure drive-loop throughput (records simulated/sec)."
    )
    parser.add_argument("--scheme", default="bimodal")
    parser.add_argument("--mix", default="Q1")
    parser.add_argument(
        "--schemes",
        default=None,
        help="matrix mode: comma-separated schemes, or 'all' for every "
        "registered scheme (runs the fast mode over --mixes)",
    )
    parser.add_argument(
        "--mixes",
        default=None,
        help="matrix mode: comma-separated trace mixes (default: --mix)",
    )
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--accesses-per-core", type=int, default=15_000)
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repeats per cell; gated runs use at least 3 "
        "(best-of-repeats is what the gate compares)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="drive engine for every cell: 'scalar' (default) or "
        "'vectorized' (see repro.harness.backends)",
    )
    parser.add_argument(
        "--backends",
        default=None,
        help="matrix mode: comma-separated drive engines, or 'all'; "
        "each (scheme, mix) cell is measured once per backend",
    )
    parser.add_argument(
        "--modes",
        default="legacy,fast,traced",
        help="comma-separated subset of {legacy,fast,traced,mrc}",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=f"append the entry to this JSON history (e.g. {BENCH_FILE})",
    )
    parser.add_argument(
        "--gate",
        default=None,
        metavar="HISTORY",
        help="compare against the last committed entry for each measured "
        "(mode, scheme, mix) in this JSON history; exit 4 on regression",
    )
    parser.add_argument(
        "--gate-threshold",
        type=float,
        default=0.7,
        help="minimum measured/committed records-per-second ratio (default 0.7)",
    )
    parser.add_argument(
        "--gate-allow-missing",
        action="store_true",
        help="let cells with no committed baseline pass the gate "
        "(first run of a new scheme) instead of failing with exit 2",
    )
    args = parser.parse_args(argv)

    # Validate the requested grid up front so a typo is a one-line
    # usage error (exit 2), not a traceback from deep inside a build.
    def usage_error(message: str) -> int:
        print(f"perfbench: error: {message}", file=sys.stderr)
        return EXIT_USAGE

    if args.cores not in (4, 8, 16):
        return usage_error(f"--cores must be 4, 8 or 16 (got {args.cores})")
    known = available_schemes()
    if args.schemes in (None, "", "all"):
        schemes = known if (args.schemes or args.mixes) else [args.scheme]
    else:
        schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    unknown = [s for s in schemes if s not in known]
    if unknown:
        return usage_error(
            f"unknown scheme(s): {', '.join(unknown)};"
            f" available schemes: {', '.join(known)}"
        )
    mixes = (
        [m.strip() for m in args.mixes.split(",") if m.strip()]
        if args.mixes
        else [args.mix]
    )
    valid_mixes = mixes_for_cores(args.cores)
    bad_mixes = [m for m in mixes if m not in valid_mixes]
    if bad_mixes:
        return usage_error(
            f"unknown mix(es) for {args.cores} cores: {', '.join(bad_mixes)};"
            f" available mixes: {', '.join(valid_mixes)}"
        )
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    bad_modes = [m for m in modes if m not in ("legacy", "fast", "traced", "mrc")]
    if bad_modes:
        return usage_error(
            f"unknown mode(s): {', '.join(bad_modes)}"
            " (use 'legacy', 'fast', 'traced' or 'mrc')"
        )
    from repro.harness.backends import (
        BACKENDS,
        NUMPY_MISSING_MESSAGE,
        backend_available,
    )

    if args.backends in ("all",):
        backends = list(BACKENDS)
    elif args.backends:
        backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    else:
        backends = [args.backend or "scalar"]
    bad_backends = [b for b in backends if b not in BACKENDS]
    if bad_backends:
        return usage_error(
            f"unknown backend(s): {', '.join(bad_backends)};"
            f" available backends: {', '.join(BACKENDS)}"
        )
    for b in backends:
        if not backend_available(b):
            print(f"perfbench: error: {NUMPY_MISSING_MESSAGE}", file=sys.stderr)
            return EXIT_USAGE
    # A gate comparison must never be set or tripped by a single noisy
    # sample: gated cells always take best-of-3 or better.
    repeats = max(3, args.repeats) if args.gate else args.repeats

    setup = ExperimentSetup(
        num_cores=args.cores, accesses_per_core=args.accesses_per_core
    )
    if args.schemes or args.mixes or args.backends:
        # Matrix mode: fast-path throughput + allocation profile for
        # every (scheme, mix, backend) cell; one history entry for the
        # grid.
        results = []
        for scheme in schemes:
            for mix in mixes:
                for backend in backends:
                    result = measure_drive_throughput(
                        scheme=scheme,
                        mix=mix,
                        setup=setup,
                        mode="fast",
                        repeats=repeats,
                        backend=backend,
                    )
                    results.append(result)
                    print(
                        f"{scheme:>10}/{mix}/{backend}:"
                        f" {result.records_per_second:10.0f}"
                        f" records/sec  (alloc peak"
                        f" {result.alloc_peak_bytes / 1024:.0f} KiB,"
                        f" {result.gc_collections} gc collections)"
                    )
        if args.output:
            append_bench_record(results, args.output)
            print(f"appended entry to {args.output}")
        if args.gate:
            return gate_against_history(
                results,
                args.gate,
                threshold=args.gate_threshold,
                allow_missing=args.gate_allow_missing,
            )
        return EXIT_OK
    results = []
    reference: dict | None = None
    backend = backends[0]
    for mode in modes:
        if mode == "mrc":
            # A ghost pass estimates hit rates, it does not drive the
            # timing model — exempt from the cross-mode stats identity.
            result = measure_mrc_throughput(
                mix=args.mix, setup=setup, repeats=repeats
            )
            results.append(result)
            print(
                f"{result.mode:>6}: {result.records_per_second:10.0f}"
                f" records/sec  ({result.records} records,"
                f" {result.extra['ghosts']} ghosts, best of {result.repeats};"
                f" {result.extra['full_sims_avoided']:g} full sims avoided,"
                f" {result.extra['dse_speedup']:g}x dse speedup)"
            )
            continue
        result = measure_drive_throughput(
            scheme=args.scheme,
            mix=args.mix,
            setup=setup,
            mode=mode,
            repeats=repeats,
            backend=backend,
        )
        if reference is None:
            reference = result.stats
        elif result.stats != reference:
            raise SystemExit(f"mode {mode!r} changed simulation statistics")
        results.append(result)
        print(
            f"{result.mode:>6}: {result.records_per_second:10.0f} records/sec"
            f"  ({result.records} records, best of {result.repeats},"
            f" backend {result.backend})"
        )
    if len(results) >= 2 and results[0].records_per_second:
        for later in results[1:]:
            ratio = later.records_per_second / results[0].records_per_second
            print(f"{later.mode}/{results[0].mode}: {ratio:10.2f}x")
    if args.output:
        append_bench_record(results, args.output)
        print(f"appended entry to {args.output}")
    if args.gate:
        return gate_against_history(
            results,
            args.gate,
            threshold=args.gate_threshold,
            allow_missing=args.gate_allow_missing,
        )
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
