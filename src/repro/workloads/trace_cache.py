"""Materialized-trace memoization (in-process LRU + on-disk ``.npz``).

Every experiment cell re-drives a merged LLSC-miss stream that is fully
determined by ``(mix, accesses_per_core, seed, footprint_scale,
intensity_scale)``. A paper-figure grid revisits the same handful of
streams dozens of times (one per scheme/config), and whole-suite re-runs
revisit all of them — so the generated record arrays are memoized at two
levels:

* an in-process LRU (entry-count bounded) serving repeat cells inside
  one run, and
* an optional on-disk ``.npz`` cache (size-capped, atomic writes)
  serving re-runs and sibling worker processes.

Environment knobs
-----------------
``REPRO_TRACE_CACHE``      ``0``/``off`` disables the disk layer
                           (the in-process LRU stays on).
``REPRO_TRACE_CACHE_DIR``  cache directory
                           (default ``~/.cache/repro-traces``).
``REPRO_TRACE_CACHE_MB``   disk size cap in MB (default 256); the
                           oldest files are pruned past the cap.

Invalidation: keys embed ``TRACE_FORMAT_VERSION`` plus a fingerprint of
the fully-scaled mix (every profile field), so generator-model changes
must bump the version, while workload/parameter changes re-key
automatically.

Self-healing: a corrupt or truncated ``.npz`` (torn write from a killed
process, disk error, foreign file) never surfaces to the caller — the
file is quarantined as ``<name>.npz.corrupt``, the
``trace_cache.corrupt_evictions`` metric increments, and the trace is
regenerated transparently. Disk pruning tolerates sibling workers
racing it: files already pruned by another process are skipped, not
raised.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from collections import OrderedDict

import numpy as np

from repro.workloads.mixes import WorkloadMix, get_mix
from repro.workloads.trace import MultiProgramTrace

__all__ = [
    "TRACE_FORMAT_VERSION",
    "trace_key",
    "materialized_trace",
    "materialized_columns",
    "clear_memory_cache",
    "cache_stats",
    "disk_cache_dir",
    "disk_cache_enabled",
]

# Bump when repro.workloads.generator / trace merging changes the record
# stream for identical parameters (stale .npz entries re-key away).
TRACE_FORMAT_VERSION = 1

_MEMORY_ENTRIES = 8  # merged streams are O(MB); keep a small working set
_memory: "OrderedDict[str, tuple]" = OrderedDict()
_stats = {
    "memory_hits": 0,
    "disk_hits": 0,
    "misses": 0,
    "corrupt_evictions": 0,
}


def disk_cache_enabled() -> bool:
    return os.environ.get("REPRO_TRACE_CACHE", "1").lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def disk_cache_dir() -> str:
    return os.environ.get(
        "REPRO_TRACE_CACHE_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-traces"),
    )


def _disk_cap_bytes() -> int:
    try:
        mb = float(os.environ.get("REPRO_TRACE_CACHE_MB", "256"))
    except ValueError:
        mb = 256.0
    return int(mb * (1 << 20))


def _mix_fingerprint(mix: WorkloadMix) -> str:
    """Digest of the fully-scaled mix: every profile field participates."""
    return hashlib.sha256(repr(mix).encode()).hexdigest()[:20]


def trace_key(
    mix: WorkloadMix | str,
    *,
    accesses_per_core: int,
    seed: int,
    footprint_scale: float = 1.0,
    intensity_scale: float = 1.0,
) -> str:
    """Stable cache key (also the on-disk file stem)."""
    if isinstance(mix, str):
        mix = get_mix(mix)
    scaled = mix.scaled(footprint_scale) if footprint_scale != 1.0 else mix
    scaled = scaled.with_intensity_scale(intensity_scale)
    return (
        f"v{TRACE_FORMAT_VERSION}-{mix.name}-c{mix.num_cores}"
        f"-a{accesses_per_core}-s{seed}"
        f"-f{footprint_scale:g}-i{intensity_scale:g}"
        f"-{_mix_fingerprint(scaled)}"
    )


def _freeze(arrays: tuple) -> tuple:
    for arr in arrays:
        arr.setflags(write=False)
    return arrays


def _memory_put(key: str, arrays: tuple) -> None:
    _memory[key] = arrays
    _memory.move_to_end(key)
    while len(_memory) > _MEMORY_ENTRIES:
        _memory.popitem(last=False)


def _disk_load(path: str) -> tuple | None:
    try:
        with np.load(path) as data:
            return _freeze(
                (data["addresses"], data["is_write"], data["icount"])
            )
    except FileNotFoundError:
        return None  # plain miss
    except Exception:
        # Truncated/corrupt entry (torn write, BadZipFile, missing or
        # malformed member, disk error): quarantine and regenerate —
        # the cache must never take a run down.
        _quarantine(path)
        return None


def _quarantine(path: str) -> None:
    """Move a corrupt entry aside as ``<path>.corrupt`` and count it."""
    try:
        os.replace(path, f"{path}.corrupt")
    except OSError:
        pass  # already quarantined/pruned by a sibling, or gone
    _stats["corrupt_evictions"] += 1
    from repro.obs import get_metrics, get_tracer

    get_metrics().add("trace_cache.corrupt_evictions")
    get_tracer().point("trace_cache.corrupt", path=path)


def _disk_store(directory: str, key: str, arrays: tuple) -> None:
    """Atomic write (tmp + rename) so parallel workers never read torn files."""
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".npz.tmp", dir=directory)
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    addresses=arrays[0],
                    is_write=arrays[1],
                    icount=arrays[2],
                )
            os.replace(tmp, os.path.join(directory, f"{key}.npz"))
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        _prune_disk(directory)
    except OSError:
        pass  # read-only/full filesystem: cache stays memory-only


def _prune_disk(directory: str) -> None:
    """Drop oldest entries until the directory fits the size cap.

    Sibling workers prune the same directory concurrently; a file
    another process already removed is simply skipped (per-file
    ``FileNotFoundError`` must not abort the sweep). Quarantined
    ``.corrupt`` files count against the cap and age out the same way.
    """
    cap = _disk_cap_bytes()
    try:
        entries = []
        total = 0
        with os.scandir(directory) as it:
            for entry in it:
                if not (
                    entry.name.endswith(".npz")
                    or entry.name.endswith(".corrupt")
                ):
                    continue
                try:
                    st = entry.stat()
                except FileNotFoundError:
                    continue  # pruned by a sibling between scan and stat
                entries.append((st.st_mtime, st.st_size, entry.path))
                total += st.st_size
        if total <= cap:
            return
        for _, size, path in sorted(entries):
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass  # a sibling got there first; its bytes are gone too
            total -= size
            if total <= cap:
                return
    except OSError:
        pass


def materialized_trace(
    mix: WorkloadMix | str,
    *,
    accesses_per_core: int,
    seed: int = 1,
    footprint_scale: float = 1.0,
    intensity_scale: float = 1.0,
):
    """The merged record arrays for one trace configuration, memoized.

    Returns a :class:`~repro.workloads.generator.TraceChunk` whose arrays
    are byte-identical to ``MultiProgramTrace(...).materialize()`` for the
    same parameters. The arrays are shared across callers and marked
    read-only — copy before mutating.
    """
    from repro.workloads.generator import TraceChunk

    if isinstance(mix, str):
        mix = get_mix(mix)
    key = trace_key(
        mix,
        accesses_per_core=accesses_per_core,
        seed=seed,
        footprint_scale=footprint_scale,
        intensity_scale=intensity_scale,
    )
    arrays = _memory.get(key)
    if arrays is not None:
        _memory.move_to_end(key)
        _stats["memory_hits"] += 1
        return TraceChunk(*arrays)

    directory = disk_cache_dir()
    use_disk = disk_cache_enabled()
    if use_disk:
        arrays = _disk_load(os.path.join(directory, f"{key}.npz"))
        if arrays is not None:
            _stats["disk_hits"] += 1
            _memory_put(key, arrays)
            return TraceChunk(*arrays)

    _stats["misses"] += 1
    merged = MultiProgramTrace(
        mix,
        accesses_per_core=accesses_per_core,
        seed=seed,
        footprint_scale=footprint_scale,
        intensity_scale=intensity_scale,
    ).materialize()
    arrays = _freeze((merged.addresses, merged.is_write, merged.icount))
    _memory_put(key, arrays)
    if use_disk:
        _disk_store(directory, key, arrays)
    return TraceChunk(*arrays)


def materialized_columns(
    mix: WorkloadMix | str,
    *,
    accesses_per_core: int,
    seed: int = 1,
    footprint_scale: float = 1.0,
    intensity_scale: float = 1.0,
) -> tuple:
    """SoA column views of a materialized trace, without copying.

    Returns the cached ``(addresses, is_write, icount)`` arrays directly
    (read-only, shared across callers) — the form the vectorized drive
    backend consumes. Same memoization as :func:`materialized_trace`.
    """
    return materialized_trace(
        mix,
        accesses_per_core=accesses_per_core,
        seed=seed,
        footprint_scale=footprint_scale,
        intensity_scale=intensity_scale,
    ).columns()


def clear_memory_cache() -> None:
    """Drop the in-process layer (tests; the disk layer is untouched)."""
    _memory.clear()


def cache_stats() -> dict[str, int]:
    """Hit/miss counters for this process (testing/diagnostics)."""
    return dict(_stats)
