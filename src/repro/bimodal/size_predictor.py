"""Block size predictor: utilization tracker + 2-bit counter table.

Section III-B3. Two cooperating components:

* the **tracker** samples ~4% of the sets and watches the per-64B-sub-block
  utilization bit vectors of big blocks resident in those sets; when a
  sampled big block is evicted, its utilization count is compared with the
  threshold ``T`` (paper: 5 of 8) to classify it big or small;
* the **predictor** is a table of ``2**P`` 2-bit saturating counters
  (paper: P = 16 => 16 KB) indexed by ``P`` bits of the tag+set-index
  bits; tracker classifications push the counter toward "11" (big) or
  "00" (small), and cache misses consult it to choose the fetch size.

Counters start at "10" (weakly big): the controller initializes all
blocks as big (Section III-B4), so cold predictions are big, but a
single sparse observation is enough to flip an entry — matching the
training responsiveness the paper's long runs achieve.
"""

from __future__ import annotations

from repro.common.stats import RateStat

__all__ = ["BlockSizePredictor", "UtilizationTracker"]


class BlockSizePredictor:
    """2-bit saturating counter table; predicts big (True) or small."""

    def __init__(self, index_bits: int = 16, *, threshold: int = 5) -> None:
        if index_bits < 1:
            raise ValueError("index_bits must be >= 1")
        if not 1 <= threshold <= 8:
            raise ValueError("threshold must be in 1..8")
        self.index_bits = index_bits
        self.threshold = threshold
        self._counters = bytearray([2] * (1 << index_bits))
        self._mask = (1 << index_bits) - 1
        self.accuracy = RateStat()  # correct = predicted class matched outcome

    @property
    def storage_bits(self) -> int:
        """2 bits per entry (paper: 2 * 2^16 = 128 Kbit = 16 KB at P=16)."""
        return 2 * (1 << self.index_bits)

    def _index(self, block_key: int) -> int:
        """Index by P bits of the tag+set bits, mixed for dispersion.

        The product is right-shifted before masking so that high-order
        key bits (the tag) influence the selected entry.
        """
        return ((block_key * 2_654_435_761) >> 15) & self._mask

    def predict_big(self, block_key: int) -> bool:
        return self._counters[self._index(block_key)] >= 2

    def train(self, block_key: int, *, was_big: bool) -> None:
        """Tracker feedback: saturate toward 11 (big) or 00 (small)."""
        idx = self._index(block_key)
        predicted_big = self._counters[idx] >= 2
        self.accuracy.record(predicted_big == was_big)
        if was_big:
            if self._counters[idx] < 3:
                self._counters[idx] += 1
        elif self._counters[idx] > 0:
            self._counters[idx] -= 1

    def classify(self, utilization: int) -> bool:
        """Threshold rule: utilization >= T sub-blocks => big."""
        return utilization >= self.threshold


class UtilizationTracker:
    """Set-sampling front-end feeding evicted-block utilizations.

    The tracker piggybacks on the cache's per-big-block utilization bit
    vectors (which the cache keeps anyway for waste accounting): it simply
    decides *which* sets participate in training and forwards their
    eviction utilizations to the predictor. Sampling every
    ``sample_every``-th set matches the paper's ~4% of sets (~20 KB of
    tracking state for a 256 MB cache).
    """

    def __init__(
        self,
        predictor: BlockSizePredictor,
        *,
        sample_every: int = 25,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.predictor = predictor
        self.sample_every = sample_every
        self.observations = 0

    def is_sampled(self, set_index: int) -> bool:
        return set_index % self.sample_every == 0

    def observe_eviction(self, set_index: int, block_key: int, utilization: int) -> None:
        """Train the predictor from a big-block eviction in a sampled set."""
        if not self.is_sampled(set_index):
            return
        self.observations += 1
        self.predictor.train(
            block_key, was_big=self.predictor.classify(utilization)
        )

    def storage_bytes(self, num_sets: int, big_ways: int = 4) -> float:
        """Tracking SRAM: one 8-bit vector per big way of each sampled set."""
        sampled = num_sets // self.sample_every
        return sampled * big_ways  # 8 bits = 1 byte per tracked way
