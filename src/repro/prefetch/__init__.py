"""Hardware prefetching between the LLSC and the DRAM cache."""

from repro.prefetch.nextn import PREF_BYPASS, PREF_NORMAL, NextNPrefetcher

__all__ = ["PREF_BYPASS", "PREF_NORMAL", "NextNPrefetcher"]
