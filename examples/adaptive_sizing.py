#!/usr/bin/env python3
"""Watch the Bi-Modal cache adapt its (X, Y) state over a run.

Drives one mix through the Bi-Modal cache while periodically sampling
the cache-wide global state, the small-block access fraction and the
block size predictor's disposition — the mechanics behind Figure 10.

Usage:
    python examples/adaptive_sizing.py [mix-name]
"""

import sys

from repro.harness import ExperimentSetup, build_cache, print_table
from repro.harness.runner import drive_cache


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "Q23"
    setup = ExperimentSetup(num_cores=4, accesses_per_core=25_000, seed=1)
    total = setup.accesses_per_core * setup.num_cores
    cache = build_cache(
        "bimodal",
        setup.system,
        scale=setup.scale,
        adaptation_interval=max(1_000, total // 150),
    )
    trace = setup.trace(mix_name)

    checkpoints = []
    sample_every = total // 10

    def record_checkpoint(count: int) -> None:
        checkpoints.append(
            {
                "accesses": count,
                "global_state": str(cache.global_ctrl.state),
                "small_frac": cache.small_block_access_fraction(),
                "hit_rate": cache.hit_rate,
                "wl_hit_rate": cache.way_locator_hit_rate,
                "space_util": cache.space_utilization(),
            }
        )

    def records():
        for i, rec in enumerate(trace):
            if i and i % sample_every == 0:
                record_checkpoint(i)
            yield rec.address, rec.is_write, rec.icount

    drive_cache(cache, records(), streams=setup.num_cores)
    record_checkpoint(total)

    print_table(
        checkpoints,
        title=f"Bi-Modal adaptation over mix {mix_name} "
        f"(T={cache.config.utilization_threshold}, "
        f"W={cache.config.adaptation_weight})",
    )
    print(
        f"\nfinal: {cache.big_fills.value} big fills, "
        f"{cache.small_fills.value} small fills, "
        f"{cache.global_ctrl.transitions} global-state transitions, "
        f"predictor accuracy {cache.predictor.accuracy.rate:.2f}"
    )


if __name__ == "__main__":
    main()
