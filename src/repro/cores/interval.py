"""Interval-based analytic core model (substitute for GEM5 OOO cores).

Each core retires instructions at ``base_cpi`` when not memory-stalled;
a DRAM-cache read (an LLSC miss) adds ``latency / MLP`` stall cycles,
where the memory-level-parallelism factor models the overlap an
out-of-order window extracts across outstanding misses. Writes (LLSC
writebacks) are posted and do not stall retirement.

This is the standard first-order model of multiprogrammed throughput:
ANTT differences between cache schemes are driven by the average LLSC
miss penalty each scheme produces, which is exactly the quantity our
DRAM cache models compute in detail.
"""

from __future__ import annotations

from repro.common.config import CoreConfig

__all__ = ["IntervalCore"]


class IntervalCore:
    """One core's retirement clock."""

    def __init__(self, core_id: int, config: CoreConfig) -> None:
        self.core_id = core_id
        self.config = config
        self.cycles = 0.0
        self.instructions = 0
        self.memory_stall_cycles = 0.0
        self.reads = 0
        self.writes = 0

    def advance_compute(self, instructions: int) -> None:
        """Retire ``instructions`` of non-stalled work."""
        self.instructions += instructions
        self.cycles += instructions * self.config.base_cpi

    def apply_read_stall(self, latency: float) -> None:
        """Account one blocking LLSC-miss read of ``latency`` cycles."""
        stall = latency / self.config.memory_level_parallelism
        self.cycles += stall
        self.memory_stall_cycles += stall
        self.reads += 1

    def note_write(self) -> None:
        """Posted write: tracked but non-blocking."""
        self.writes += 1

    @property
    def now(self) -> int:
        """Current time in whole cycles (arrival stamp for requests)."""
        return int(self.cycles)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def stall_fraction(self) -> float:
        return self.memory_stall_cycles / self.cycles if self.cycles else 0.0
