"""Cross-validation of the flat DRAMDevice timing kernel.

The device keeps all bank/channel state in flat lists and duplicates the
timing kernel into its hot entry points (``read_fast``, ``write_fast``,
``access_direct_fast``). These tests pin every copy to the slower
object models on randomized request sequences:

* against :class:`~repro.dram.reference.ReferenceBank`, the
  command-granularity schedule (PRE/ACT/CAS with explicit constraints);
* against a mirror built from :class:`~repro.dram.channel.Channel` /
  :class:`~repro.dram.bank.Bank` objects, including bus serialization,
  refresh stagger and the per-bank statistics the views expose.
"""

from hypothesis import given, settings, strategies as st

from repro.common.config import DRAMGeometry, DRAMTimingConfig
from repro.dram.channel import build_channels
from repro.dram.device import DRAMDevice
from repro.dram.reference import ReferenceBank


def _timings(kind: str) -> DRAMTimingConfig:
    return (
        DRAMTimingConfig.stacked()
        if kind == "stacked"
        else DRAMTimingConfig.ddr3_1600h()
    )


@settings(max_examples=100, deadline=None)
@given(
    requests=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 300)),  # (row, gap)
        min_size=1,
        max_size=60,
    ),
    timing_kind=st.sampled_from(["stacked", "ddr3"]),
)
def test_flat_kernel_matches_reference_bank(requests, timing_kind):
    """Kernel CAS/data times equal the command-level schedule.

    Arrivals are clamped past the previous transfer's end so the shared
    data bus never delays a request: the kernel's ``last_data_start``
    must then equal the reference's ``data_ready`` (CAS + CL), and the
    row outcome must match the commands the reference issued. Bank 0
    has refresh offset 0 in both models.
    """
    timings = _timings(timing_kind)
    geometry = DRAMGeometry(channels=1, banks_per_channel=1, page_size=2048)
    device = DRAMDevice(geometry, timings)
    reference = ReferenceBank(timings)
    now = 0
    prev_end = 0
    for row, gap in requests:
        now = max(now + gap, prev_end)
        prev_end = device.access_direct_fast(0, 0, row, now)
        ref = reference.access(row, now)
        assert device.last_data_start == ref.data_ready, (row, now)
        if ref.precharge_at is not None:
            assert device.last_outcome == 2  # conflict: PRE + ACT + CAS
        elif ref.activate_at is not None:
            assert device.last_outcome == 1  # closed: ACT + CAS
        else:
            assert device.last_outcome == 0  # row hit: CAS only


@settings(max_examples=60, deadline=None)
@given(
    requests=st.lists(
        st.tuples(
            st.sampled_from(["direct_fast", "read_fast", "write_fast", "timed"]),
            st.integers(0, 1),  # channel
            st.integers(0, 3),  # bank
            st.integers(0, 5),  # row (direct) / address seed (decoded)
            st.integers(1, 4),  # bursts
            st.integers(0, 200),  # gap
        ),
        min_size=1,
        max_size=60,
    ),
    timing_kind=st.sampled_from(["stacked", "ddr3"]),
)
def test_flat_kernel_matches_channel_object_model(requests, timing_kind):
    """Every inlined kernel copy tracks the Bank/Channel object model.

    The mirror is built with the same refresh stagger the device bakes
    into its flat state; addressed entry points route the mirror through
    ``device.decode`` (pure mask/shift, shared by construction). Ends,
    bus data-start and the per-bank statistics views must all agree.
    """
    timings = _timings(timing_kind)
    geometry = DRAMGeometry(channels=2, banks_per_channel=4, page_size=2048)
    device = DRAMDevice(geometry, timings)
    mirror = build_channels(geometry, timings)
    now = 0
    for kind, channel, bank, seed, bursts, gap in requests:
        now += gap
        if kind == "direct_fast":
            end = device.access_direct_fast(channel, bank, seed, now, bursts)
            want = mirror[channel].access_fast(bank, seed, now, bursts)
        elif kind == "timed":
            end = device._timed(channel, bank, seed, now, bursts, None)
            want = mirror[channel].access_fast(bank, seed, now, bursts)
        else:
            address = (seed * 131) << 13  # spread across rows/banks/channels
            loc = device.decode(address)
            if kind == "read_fast":
                end = device.read_fast(address, now, bursts)
            else:
                end = device.write_fast(address, now, bursts)
            want = mirror[loc.channel].access_fast(loc.bank, loc.row, now, bursts)
        assert end == want, (kind, now)
        ch = channel if kind in ("direct_fast", "timed") else loc.channel
        assert device.last_data_start == mirror[ch].last_data_start, (kind, now)

    # The structural views over the flat state must agree with the
    # object model's per-bank counters and bus accounting.
    for ch_view, ch_obj in zip(device.channels, mirror):
        assert ch_view.bus_free_at == ch_obj.bus_free_at
        assert ch_view.bus_busy_cycles == ch_obj.bus_busy_cycles
        for bank_view, bank_obj in zip(ch_view.banks, ch_obj.banks):
            assert bank_view.open_row == bank_obj.open_row
            assert bank_view.ready_at == bank_obj.ready_at
            assert bank_view.activations == bank_obj.activations
            assert bank_view.precharges == bank_obj.precharges
            assert bank_view.row_buffer.hits == bank_obj.row_buffer.hits
            assert bank_view.row_buffer.misses == bank_obj.row_buffer.misses
