"""CLI front-end tests (python -m repro)."""

import pytest

from repro.__main__ import _EXPERIMENTS, main

import repro.harness.experiments as experiments


def test_list_runs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out and "table3" in out


def test_every_listed_experiment_exists():
    for name, (attr, _, cores, _) in _EXPERIMENTS.items():
        assert hasattr(experiments, attr), name
        assert cores in (4, 8, 16)


def test_unknown_experiment(capsys):
    assert main(["figure99"]) == 2
    assert "unknown experiment" in capsys.readouterr().out


def test_static_experiment_prints_table(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "bimodal" in out


def test_dynamic_experiment_with_mixes(capsys):
    assert main(["fig2", "--mixes", "Q2", "--accesses", "1500"]) == 0
    out = capsys.readouterr().out
    assert "Q2" in out and "u8" in out
