"""Multiprogrammed trace assembly.

Per-core :class:`~repro.workloads.generator.ProgramTrace` streams are
merged into one interleaved stream ordered by *instruction time*: each
core advances its own instruction counter by the per-access gaps, and the
merged stream emits the globally earliest next access. This reproduces
how a multiprogrammed workload presents interleaved demand to a shared
DRAM cache without needing the timing model (which consumes the merged
stream downstream and applies real cycle times).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from repro.workloads.generator import ProgramTrace, TraceChunk
from repro.workloads.mixes import WorkloadMix

__all__ = ["TraceRecord", "MultiProgramTrace", "CORE_ADDRESS_STRIDE"]

# Each core owns a disjoint 64 GB slice of the physical address space.
CORE_ADDRESS_STRIDE = 1 << 36


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One interleaved access."""

    core: int
    address: int
    is_write: bool
    icount: int  # instructions on this core since its previous access


class _CoreStream:
    """Buffered per-core iterator over chunked trace generation."""

    __slots__ = ("core", "_iter", "_chunk", "_pos", "instr_time")

    def __init__(self, core: int, trace: ProgramTrace, accesses: int) -> None:
        self.core = core
        self._iter = trace.chunks(accesses)
        self._chunk: TraceChunk | None = None
        self._pos = 0
        self.instr_time = 0

    def next_record(self) -> TraceRecord | None:
        if self._chunk is None or self._pos >= len(self._chunk):
            try:
                self._chunk = next(self._iter)
            except StopIteration:
                return None
            self._pos = 0
        i = self._pos
        self._pos += 1
        gap = int(self._chunk.icount[i])
        self.instr_time += gap
        return TraceRecord(
            core=self.core,
            address=int(self._chunk.addresses[i]),
            is_write=bool(self._chunk.is_write[i]),
            icount=gap,
        )


class MultiProgramTrace:
    """Instruction-time-ordered merge of a mix's per-core streams."""

    __slots__ = ("mix", "accesses_per_core", "seed", "traces", "_streams")

    def __init__(
        self,
        mix: WorkloadMix,
        *,
        accesses_per_core: int,
        seed: int = 1,
        footprint_scale: float = 1.0,
        intensity_scale: float = 1.0,
    ) -> None:
        if accesses_per_core < 1:
            raise ValueError("accesses_per_core must be >= 1")
        scaled = mix.scaled(footprint_scale) if footprint_scale != 1.0 else mix
        scaled = scaled.with_intensity_scale(intensity_scale)
        self.mix = scaled
        self.accesses_per_core = accesses_per_core
        self.seed = seed
        self.traces = [
            ProgramTrace(
                profile,
                seed=seed + core,
                base_address=core * CORE_ADDRESS_STRIDE,
            )
            for core, profile in enumerate(scaled.programs)
        ]
        self._streams = [
            _CoreStream(core, trace, accesses_per_core)
            for core, trace in enumerate(self.traces)
        ]

    def __iter__(self) -> Iterator[TraceRecord]:
        """Yield records ordered by per-core instruction time."""
        heap: list[tuple[int, int, TraceRecord]] = []
        for stream in self._streams:
            record = stream.next_record()
            if record is not None:
                heapq.heappush(heap, (stream.instr_time, stream.core, record))
        while heap:
            _, core, record = heapq.heappop(heap)
            yield record
            stream = self._streams[core]
            nxt = stream.next_record()
            if nxt is not None:
                heapq.heappush(heap, (stream.instr_time, core, nxt))

    def materialize(self) -> TraceChunk:
        """The full merged stream as one :class:`TraceChunk`.

        Produces exactly the record sequence :meth:`__iter__` yields, but
        vectorized: per-core streams are generated in bulk and merged with
        one stable lexsort on (instruction time, core) — the same key the
        record-at-a-time heap orders by. Because each core's instruction
        clock is strictly increasing, the k-way heap merge and the global
        sort are equivalent, record for record.

        Fresh :class:`ProgramTrace` instances are built from the stored
        (mix, seed) so materialization does not consume the generator
        state behind :meth:`__iter__`.
        """
        times_parts: list[np.ndarray] = []
        cores_parts: list[np.ndarray] = []
        chunks: list[TraceChunk] = []
        for core, profile in enumerate(self.mix.programs):
            trace = ProgramTrace(
                profile,
                seed=self.seed + core,
                base_address=core * CORE_ADDRESS_STRIDE,
            )
            parts = list(trace.chunks(self.accesses_per_core))
            chunk = TraceChunk(
                addresses=np.concatenate([p.addresses for p in parts]),
                is_write=np.concatenate([p.is_write for p in parts]),
                icount=np.concatenate([p.icount for p in parts]),
            )
            # Instruction time *through* each record, matching the heap
            # key (_CoreStream.instr_time is advanced before the push).
            times_parts.append(np.cumsum(chunk.icount, dtype=np.int64))
            cores_parts.append(np.full(len(chunk), core, dtype=np.int32))
            chunks.append(chunk)
        times = np.concatenate(times_parts)
        cores = np.concatenate(cores_parts)
        # lexsort is stable and sorts by the last key first: primary
        # instruction time, ties broken by core index — the heap's order.
        order = np.lexsort((cores, times))
        return TraceChunk(
            addresses=np.concatenate([c.addresses for c in chunks])[order],
            is_write=np.concatenate([c.is_write for c in chunks])[order],
            icount=np.concatenate([c.icount for c in chunks])[order],
        )

    def merged_chunks(self, *, chunk_size: int = 1 << 16) -> Iterator[TraceChunk]:
        """Chunked view of the merged stream (bounded peak memory)."""
        merged = self.materialize()
        for start in range(0, len(merged), chunk_size):
            stop = start + chunk_size
            yield TraceChunk(
                addresses=merged.addresses[start:stop],
                is_write=merged.is_write[start:stop],
                icount=merged.icount[start:stop],
            )

    @property
    def total_accesses(self) -> int:
        return self.accesses_per_core * len(self.traces)
