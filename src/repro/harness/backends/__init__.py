"""Backend seam for the closed-loop drive (`scalar` | `vectorized`).

The drive loop has exactly one semantic definition — the scalar kernel in
:mod:`repro.harness.runner` — and this package is the seam that lets a
run route records through an alternative engine:

* ``scalar`` (default): the reference per-record kernel, untouched.
* ``vectorized``: the numpy structure-of-arrays engine in
  :mod:`repro.harness.backends.vectorized`; byte-identical results,
  pinned by the golden-stats suite and the randomized cross-validation
  tests.

Selection order: explicit ``backend=`` argument > ``REPRO_BACKEND``
environment variable > ``scalar``. Schemes without a vectorized kernel
fall back to the scalar path transparently; the fall-back is recorded on
the :class:`~repro.harness.runner.DriveResult` (``backend_fallbacks``)
and in the ``drive.backend_fallbacks`` metric.

This module must stay importable without numpy: the scalar path never
imports it, and ``vectorized`` availability is probed via
``importlib.util.find_spec`` only.
"""

from __future__ import annotations

import importlib.util
import os

__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "NUMPY_MISSING_MESSAGE",
    "BackendUnavailableError",
    "UnknownBackendError",
    "available_backends",
    "backend_available",
    "drive_with_backend",
    "require_backend",
    "resolve_backend",
]

BACKEND_ENV = "REPRO_BACKEND"
DEFAULT_BACKEND = "scalar"
BACKENDS = ("scalar", "vectorized")

NUMPY_MISSING_MESSAGE = (
    "backend 'vectorized' requires numpy, which is not installed; "
    "run with --backend scalar or install numpy"
)


class UnknownBackendError(ValueError):
    """Requested backend name is not registered."""


class BackendUnavailableError(RuntimeError):
    """Requested backend exists but cannot run in this environment."""


def available_backends() -> tuple[str, ...]:
    return BACKENDS


def resolve_backend(name: str | None = None) -> str:
    """Resolve a backend name: argument > ``REPRO_BACKEND`` > default."""
    if name is None:
        name = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    name = name.strip().lower()
    if name not in BACKENDS:
        raise UnknownBackendError(
            f"unknown backend {name!r}; available: {', '.join(BACKENDS)}"
        )
    return name


def backend_available(name: str) -> bool:
    """Whether ``name`` can run here (numpy probe; no numpy import)."""
    if name == "vectorized":
        return importlib.util.find_spec("numpy") is not None
    return True


def require_backend(name: str | None = None) -> str:
    """Resolve and validate availability; raises with a one-line message."""
    resolved = resolve_backend(name)
    if not backend_available(resolved):
        raise BackendUnavailableError(NUMPY_MISSING_MESSAGE)
    return resolved


def drive_with_backend(name: str, cache, records, kwargs: dict):
    """Route one drive through a non-default backend.

    ``kwargs`` is the drive-parameter dict built by
    :func:`repro.harness.runner.drive_cache`. Schemes/record forms the
    backend cannot handle fall back to the scalar reference path with
    ``backend_fallbacks`` recorded on the result.
    """
    from repro.harness import runner

    resolved = require_backend(name)
    if resolved == "scalar":
        return runner._dispatch_drive(cache, records, kwargs)
    from repro.harness.backends import vectorized

    if vectorized.supports(cache, records):
        return vectorized.drive(cache, records, kwargs)
    result = runner._dispatch_drive(cache, records, kwargs)
    result.backend = resolved
    result.backend_fallbacks = 1
    from repro.obs import get_metrics

    get_metrics().add("drive.backend_fallbacks")
    return result
