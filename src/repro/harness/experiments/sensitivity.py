"""Figure 12 sensitivity study and the ablations beyond the paper.

``BiModal(X-Y-Z)`` in the paper's notation: cache size X, big block size
Y, big-block associativity Z. All improvements are over a same-sized
AlloyCache. Capacities are expressed at paper scale and shifted by the
experiment's capacity scale factor.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bimodal.cache import BiModalConfig
from repro.cores.metrics import improvement_percent
from repro.cores.multiprog import MultiProgramRunner
from repro.harness.runner import (
    ExperimentSetup,
    build_cache,
    run_scheme_on_mix,
    scaled_locator_bits,
)
from repro.workloads.mixes import mixes_for_cores

__all__ = [
    "fig12_sensitivity",
    "ablation_threshold",
    "ablation_weight",
    "ablation_sampling",
    "ablation_parallel_tag",
]


def _antt_for(
    scheme: str,
    mix_name: str,
    *,
    setup: ExperimentSetup,
    cache_mb: int | None = None,
    bimodal_config: BiModalConfig | None = None,
) -> float:
    mix = mixes_for_cores(setup.num_cores)[mix_name]
    system = setup.system
    if cache_mb is not None:
        system = system.scaled_cache(cache_mb << 20)
    total = setup.accesses_per_core * setup.num_cores

    def factory():
        return build_cache(
            scheme,
            system,
            scale=setup.scale,
            bimodal_config=bimodal_config,
            adaptation_interval=max(1_000, total // 150),
        )

    runner = MultiProgramRunner(
        mix,
        factory,
        accesses_per_core=setup.accesses_per_core,
        seed=setup.seed,
        footprint_scale=setup.footprint_scale,
    )
    antt, _ = runner.run_antt()
    return antt


def fig12_sensitivity(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
) -> list[dict]:
    """Figure 12: gains hold across cache size, block size, associativity.

    Paper configurations (at full scale): BiModal(64M-512-4),
    BiModal(512M-512-4), BiModal(128M-256-8), BiModal(128M-1024-2) and an
    8-way variant via a 4 KB set; each vs a same-sized AlloyCache.
    """
    setup = setup or ExperimentSetup()
    names = mix_names or ["Q2", "Q7", "Q12", "Q20"]
    k = scaled_locator_bits(scale=setup.scale)
    base_cfg = BiModalConfig(
        locator_index_bits=k,
        predictor_index_bits=10,
        tracker_sample_every=2,
        adaptation_interval=2_000,
    )
    paper_cache_mb = setup.system.dram_cache.capacity >> 20  # already scaled

    variants = [
        # (label, scaled cache MB, config tweak)
        ("BiModal(64M-512-4)", max(1, paper_cache_mb // 2), base_cfg),
        ("BiModal(128M-512-4)", paper_cache_mb, base_cfg),
        ("BiModal(512M-512-4)", paper_cache_mb * 4, base_cfg),
        (
            "BiModal(128M-256-8)",
            paper_cache_mb,
            replace(base_cfg, big_block_size=256),
        ),
        (
            "BiModal(128M-1024-2)",
            paper_cache_mb,
            replace(base_cfg, big_block_size=1024),
        ),
        (
            "BiModal(128M-512-8)",
            paper_cache_mb,
            replace(base_cfg, set_size=4096),
        ),
    ]
    rows = []
    for label, cache_mb, cfg in variants:
        gains = []
        for name in names:
            base = _antt_for("alloy", name, setup=setup, cache_mb=cache_mb)
            bi = _antt_for(
                "bimodal", name, setup=setup, cache_mb=cache_mb, bimodal_config=cfg
            )
            gains.append(improvement_percent(base, bi))
        rows.append(
            {
                "config": label,
                "scaled_cache_mb": cache_mb,
                "mean_antt_gain_pct": sum(gains) / len(gains),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Ablations beyond the paper (DESIGN.md section 5)
# ----------------------------------------------------------------------
def _bimodal_stats(
    mix_name: str, setup: ExperimentSetup, cfg: BiModalConfig
) -> dict:
    return run_scheme_on_mix(
        "bimodal", mix_name, setup=setup, bimodal_config=cfg
    ).stats


def _base_config(setup: ExperimentSetup) -> BiModalConfig:
    return BiModalConfig(
        locator_index_bits=scaled_locator_bits(scale=setup.scale),
        predictor_index_bits=10,
        tracker_sample_every=2,
        adaptation_interval=2_000,
    )


def ablation_threshold(
    *,
    setup: ExperimentSetup | None = None,
    mix_name: str = "Q7",
    thresholds: tuple[int, ...] = (2, 3, 5, 7, 8),
) -> list[dict]:
    """Utilization threshold T sweep (paper fixes T=5, suggests stricter
    T trades bandwidth for hit rate)."""
    setup = setup or ExperimentSetup()
    rows = []
    for t in thresholds:
        cfg = replace(_base_config(setup), utilization_threshold=t)
        stats = _bimodal_stats(mix_name, setup, cfg)
        rows.append(
            {
                "T": t,
                "hit_rate": stats["hit_rate"],
                "offchip_mb": stats["offchip_fetched_bytes"] / (1 << 20),
                "small_fraction": stats["small_access_fraction"],
            }
        )
    return rows


def ablation_weight(
    *,
    setup: ExperimentSetup | None = None,
    mix_name: str = "Q7",
    weights: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.5),
) -> list[dict]:
    """Adaptation weight W sweep (paper fixes W=0.75)."""
    setup = setup or ExperimentSetup()
    rows = []
    for w in weights:
        cfg = replace(_base_config(setup), adaptation_weight=w)
        stats = _bimodal_stats(mix_name, setup, cfg)
        rows.append(
            {
                "W": w,
                "hit_rate": stats["hit_rate"],
                "small_fraction": stats["small_access_fraction"],
                "global_state": str(stats["global_state"]),
            }
        )
    return rows


def ablation_sampling(
    *,
    setup: ExperimentSetup | None = None,
    mix_name: str = "Q7",
    rates: tuple[int, ...] = (1, 2, 8, 32),
) -> list[dict]:
    """Tracker set-sampling sweep (paper uses ~4% of sets)."""
    setup = setup or ExperimentSetup()
    rows = []
    for every in rates:
        cfg = replace(_base_config(setup), tracker_sample_every=every)
        stats = _bimodal_stats(mix_name, setup, cfg)
        rows.append(
            {
                "sample_every": every,
                "hit_rate": stats["hit_rate"],
                "predictor_accuracy": stats["predictor_accuracy"],
                "small_fraction": stats["small_access_fraction"],
            }
        )
    return rows


def ablation_parallel_tag(
    *,
    setup: ExperimentSetup | None = None,
    mix_names: list[str] | None = None,
) -> list[dict]:
    """Parallel vs serial tag+data issue on way locator misses."""
    setup = setup or ExperimentSetup()
    names = mix_names or ["Q2", "Q7"]
    rows = []
    for name in names:
        res = {}
        for label, parallel in (("parallel", True), ("serial", False)):
            cfg = replace(_base_config(setup), parallel_tag_data=parallel)
            res[label] = _bimodal_stats(name, setup, cfg)["avg_read_latency"]
        rows.append(
            {
                "mix": name,
                "parallel_latency": res["parallel"],
                "serial_latency": res["serial"],
                "saving_pct": 100.0
                * (res["serial"] - res["parallel"])
                / res["serial"]
                if res["serial"]
                else 0.0,
            }
        )
    return rows
