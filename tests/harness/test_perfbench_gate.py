"""perfbench gate and CLI validation error paths (no simulation runs)."""

import json

import pytest

from repro.harness.perfbench import (
    ThroughputResult,
    gate_against_history,
    main,
)


def _result(scheme="bimodal", mix="Q1", mode="fast", rps=1000.0):
    return ThroughputResult(
        mode=mode,
        scheme=scheme,
        mix=mix,
        records=800,
        best_seconds=800 / rps,
        records_per_second=rps,
        repeats=1,
        stats={},
    )


def _history(tmp_path, rps=1000.0):
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps([
        {
            "timestamp": "2026-01-01T00:00:00",
            "measurements": [
                {"mode": "fast", "scheme": "bimodal", "mix": "Q1",
                 "records_per_second": rps},
            ],
        }
    ]))
    return path


class TestGate:
    def test_matching_cell_passes(self, tmp_path, capsys):
        path = _history(tmp_path, rps=1000.0)
        assert gate_against_history([_result(rps=950.0)], path) == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_exits_4(self, tmp_path, capsys):
        path = _history(tmp_path, rps=1000.0)
        assert gate_against_history([_result(rps=100.0)], path) == 4
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_cell_is_one_line_error(self, tmp_path, capsys):
        path = _history(tmp_path)
        assert gate_against_history([_result(mix="Q7")], path) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # exactly one line, no traceback
        assert "no committed baseline" in err
        assert "fast/bimodal/Q7" in err

    def test_missing_history_file_is_an_error(self, tmp_path, capsys):
        assert gate_against_history([_result()], tmp_path / "none.json") == 2
        assert "no committed baseline" in capsys.readouterr().err

    def test_allow_missing_restores_skip(self, tmp_path, capsys):
        path = _history(tmp_path)
        code = gate_against_history(
            [_result(mix="Q7")], path, allow_missing=True
        )
        assert code == 0
        assert "skipping" in capsys.readouterr().out


class TestCliValidation:
    @pytest.mark.parametrize(
        "argv, needle",
        [
            (["--scheme", "nosuch"], "unknown scheme"),
            (["--schemes", "bimodal,nosuch"], "unknown scheme"),
            (["--mix", "Z9"], "unknown mix"),
            (["--mixes", "Q1,Z9"], "unknown mix"),
            (["--modes", "warp"], "unknown mode"),
            (["--cores", "6"], "--cores must be"),
        ],
    )
    def test_usage_errors_are_one_line(self, argv, needle, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("perfbench: error:")
        assert needle in err

    def test_unknown_scheme_error_lists_registry(self, capsys):
        main(["--scheme", "nosuch"])
        err = capsys.readouterr().err
        assert "bimodal" in err and "alloy" in err
