"""Envelope framing for the ``repro serve`` socket protocol.

One connection carries many concurrent requests, so every protocol
line wraps a :mod:`repro.api.wire` payload in a correlation envelope
(``docs/service.md`` has the full spec and wire examples):

Request lines (client -> server)::

    {"id": "r1", "verb": "sim",  "request": {"type": "SimRequest", ...}}
    {"id": "r2", "verb": "grid", "request": {"type": "GridRequest", ...}}
    {"id": "r3", "verb": "dse",  "request": {"type": "DseRequest", ...}}
    {"id": "r4", "verb": "stats"}
    {"id": "r5", "verb": "ping"}
    {"id": "r6", "verb": "health"}

Response lines (server -> client), always echoing the request ``id``::

    {"id": "r1", "kind": "event",  "payload": {"type": "ProgressEvent", ...}}
    {"id": "r1", "kind": "result", "payload": {"type": "SimResult", ...}}
    {"id": "r1", "kind": "error",  "payload": {"type": "ApiError", ...}}

A request produces zero or more ``event`` lines followed by exactly one
``result`` or ``error`` line. Lines the server cannot attribute to a
request (unparseable JSON, missing ``id``) come back with ``id": ""``.
"""

from __future__ import annotations

from repro.api.wire import WireError, dumps_strict, from_wire, loads_strict, to_wire

__all__ = [
    "VERBS",
    "parse_request_line",
    "parse_response_line",
    "request_line",
    "response_line",
]

#: Every request verb the protocol defines. ``sim``, ``grid`` and
#: ``dse`` carry a ``request`` payload; ``stats``, ``ping`` and
#: ``health`` are bare.
VERBS = ("sim", "grid", "dse", "stats", "ping", "health")

_REQUEST_VERBS = {
    "sim": "SimRequest",
    "grid": "GridRequest",
    "dse": "DseRequest",
}
_RESPONSE_KINDS = ("event", "result", "error")


def request_line(request_id: str, verb: str, request=None) -> bytes:
    """One client->server protocol line (compact JSON + newline)."""
    envelope: dict = {"id": request_id, "verb": verb}
    if request is not None:
        envelope["request"] = to_wire(request)
    return (dumps_strict(envelope) + "\n").encode()


def response_line(request_id: str, kind: str, payload) -> bytes:
    """One server->client protocol line (compact JSON + newline)."""
    if kind not in _RESPONSE_KINDS:
        raise WireError(f"unknown response kind {kind!r}")
    envelope = {"id": request_id, "kind": kind, "payload": to_wire(payload)}
    return (dumps_strict(envelope) + "\n").encode()


def _load(line: str | bytes) -> dict:
    if isinstance(line, bytes):
        line = line.decode()
    envelope = loads_strict(line)
    if not isinstance(envelope, dict):
        raise WireError(
            f"protocol line must be an object, got {type(envelope).__name__}"
        )
    return envelope


def parse_request_line(line: str | bytes):
    """``(request_id, verb, typed request or None)`` for one client line."""
    envelope = _load(line)
    request_id = envelope.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise WireError("request envelope needs a non-empty string 'id'")
    verb = envelope.get("verb")
    if verb not in VERBS:
        raise WireError(
            f"unknown verb {verb!r} (known: {', '.join(VERBS)})"
        )
    expected = _REQUEST_VERBS.get(verb)
    if expected is None:
        if "request" in envelope:
            raise WireError(f"verb {verb!r} takes no request payload")
        return request_id, verb, None
    payload = envelope.get("request")
    if payload is None:
        raise WireError(f"verb {verb!r} needs a request payload")
    request = from_wire(payload)
    if type(request).__name__ != expected:
        raise WireError(
            f"verb {verb!r} expects a {expected}, got {type(request).__name__}"
        )
    return request_id, verb, request


def parse_response_line(line: str | bytes):
    """``(request_id, kind, typed payload)`` for one server line."""
    envelope = _load(line)
    request_id = envelope.get("id")
    if not isinstance(request_id, str):
        raise WireError("response envelope needs a string 'id'")
    kind = envelope.get("kind")
    if kind not in _RESPONSE_KINDS:
        raise WireError(
            f"unknown response kind {kind!r} "
            f"(known: {', '.join(_RESPONSE_KINDS)})"
        )
    payload = envelope.get("payload")
    if payload is None:
        raise WireError("response envelope needs a 'payload'")
    return request_id, kind, from_wire(payload)
