"""AlloyCache — the paper's aggressive baseline (Qureshi & Loh, MICRO'12).

Direct-mapped, 64-byte blocks, with tag and data *alloyed* into one
72-byte TAD (tag-and-data) unit so a single DRAM access with a slightly
bigger burst returns both. A 2 KB row holds 28 TADs. A MAP (memory access
predictor) guesses hit/miss per access: predicted misses overlap the
off-chip fetch with the cache probe; predicted hits probe the cache alone.

Substitution note: MAP-I indexes by instruction address, which synthetic
traces do not carry; we index the same 2-bit-counter table by a hash of
the 4 KB region of the miss address, which captures the same
streaming-vs-resident correlation MAP-I exploits (misses cluster on the
same regions a load instruction streams through).
"""

from __future__ import annotations

from repro.common.config import DRAMCacheGeometry
from repro.dram.controller import MemoryController
from repro.dramcache.base import DRAMCacheBase

__all__ = ["MAPPredictor", "AlloyCache"]

_TADS_PER_ROW = 28
_TAD_TRANSFER_CYCLES = 5  # 72 B on the 16 B/cycle stacked bus, rounded up
_TAG_COMPARE_CYCLES = 1


class MAPPredictor:
    """2-bit saturating hit/miss predictor table (1 KB => 4096 counters)."""

    __slots__ = ("_counters", "_mask", "correct", "wrong")

    def __init__(self, entries: int = 4096) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self._counters = [3] * entries  # optimistic: predict miss initially
        self._mask = entries - 1
        self.correct = 0
        self.wrong = 0

    def _index(self, address: int) -> int:
        region = address >> 12
        return ((region * 2_654_435_761) >> 15) & self._mask

    def predict_miss(self, address: int) -> bool:
        return self._counters[self._index(address)] >= 2

    def update(self, address: int, was_miss: bool) -> None:
        idx = self._index(address)
        predicted_miss = self._counters[idx] >= 2
        if predicted_miss == was_miss:
            self.correct += 1
        else:
            self.wrong += 1
        if was_miss:
            if self._counters[idx] < 3:
                self._counters[idx] += 1
        elif self._counters[idx] > 0:
            self._counters[idx] -= 1

    @property
    def accuracy(self) -> float:
        total = self.correct + self.wrong
        return self.correct / total if total else 0.0


class AlloyCache(DRAMCacheBase):
    """Direct-mapped tags-with-data DRAM cache."""

    name = "alloy"

    def __init__(
        self,
        geometry: DRAMCacheGeometry,
        offchip: MemoryController,
        *,
        use_map_predictor: bool = True,
    ) -> None:
        super().__init__(geometry, offchip)
        rows = geometry.capacity // geometry.geometry.page_size
        self.num_slots = rows * _TADS_PER_ROW
        self._tags: dict[int, int] = {}  # slot -> block number
        self._dirty: set[int] = set()
        self.predictor = MAPPredictor() if use_map_predictor else None
        self._channels = geometry.geometry.channels
        self._banks = geometry.geometry.banks_per_channel

    # ------------------------------------------------------------------
    def _slot(self, address: int) -> tuple[int, int]:
        """(slot index, block number) for a 64 B block address."""
        block = address >> 6
        return block % self.num_slots, block

    def _location(self, slot: int) -> tuple[int, int, int]:
        """Interleave TAD rows across channels then banks."""
        row = slot // _TADS_PER_ROW
        channel = row % self._channels
        bank = (row // self._channels) % self._banks
        bank_row = row // (self._channels * self._banks)
        return channel, bank, bank_row

    def _probe(self, slot: int, now: int) -> int:
        """One TAD access (tag+data big burst); returns data-end time."""
        channel, bank, row = self._location(slot)
        return self.dram.access_direct_fast(
            channel, bank, row, now, 1, _TAD_TRANSFER_CYCLES
        )

    def _fill(self, slot: int, block: int, now: int, *, dirty: bool) -> None:
        """Install a block; dirty victims write back at 64 B granularity."""
        victim = self._tags.get(slot)
        if victim is not None and slot in self._dirty:
            self._writeback_offchip(victim << 6, now, bursts=1)
        self._dirty.discard(slot)
        self._tags[slot] = block
        if dirty:
            self._dirty.add(slot)
        channel, bank, row = self._location(slot)
        self._post_call(
            now,
            self.dram.access_direct_fast,
            channel, bank, row, now, 1, _TAD_TRANSFER_CYCLES,
        )

    def resident(self, address: int) -> bool:
        """State-only residency probe (prefetch bypass support)."""
        slot, block = self._slot(address)
        return self._tags.get(slot) == block

    # ------------------------------------------------------------------
    def _access_fast(self, address: int, now: int, is_write: bool) -> int:
        block = address >> 6
        slot = block % self.num_slots
        resident = self._tags.get(slot) == block
        self._hit = resident

        predicted_miss = False
        predictor = self.predictor
        if predictor is not None and not is_write:
            predicted_miss = predictor.predict_miss(address)
            predictor.update(address, not resident)

        probe_end = self._probe(slot, now) + _TAG_COMPARE_CYCLES

        if is_write:
            if resident:
                self._dirty.add(slot)
            else:
                # write-allocate: fetch the rest of the line, then install
                fetch_end = self._fetch_offchip(address, now, bursts=1)
                self._fill(slot, block, fetch_end, dirty=True)
            return probe_end

        if resident:
            # A false miss prediction also launched a useless memory read.
            if predicted_miss:
                self._fetch_offchip(address, now, bursts=1)
            return probe_end

        # Actual miss: fetch starts at `now` when predicted (parallel
        # access), else only once the probe disproved residency.
        fetch_start = now if predicted_miss else probe_end
        fetch_end = self._fetch_offchip(address, fetch_start, bursts=1)
        self._fill(slot, block, fetch_end, dirty=False)
        return fetch_end
