"""Regression tests for global-time-ordered request delivery.

The multiprogrammed runners must deliver requests to the shared memory
system in non-decreasing arrival-time order even when per-core clocks
diverge wildly (a low-intensity core races ahead in cycle count). An
earlier implementation keyed its scheduling heap on post-access core
clocks, letting a far-ahead core stamp bank state that earlier-in-time
requests from slower cores then queued behind — inflating latencies by
orders of magnitude on heterogeneous mixes.
"""


from repro.cores.multiprog import MultiProgramRunner
from repro.harness.runner import ExperimentSetup, build_cache
from repro.harness.system import System
from repro.workloads.mixes import WorkloadMix
from repro.workloads.profile import ProgramProfile


def heterogeneous_mix() -> WorkloadMix:
    """Two programs with a 50x intensity gap (maximal clock skew)."""
    hot = ProgramProfile(
        name="hot",
        footprint_mb=4.0,
        utilization_dist={8: 1.0},
        intensity_apki=40.0,
        seed_salt=0,
    )
    cold = ProgramProfile(
        name="cold",
        footprint_mb=1.0,
        utilization_dist={8: 1.0},
        intensity_apki=0.8,
        seed_salt=1,
    )
    return WorkloadMix(name="skew", programs=(hot, cold, hot.with_salt(2), cold.with_salt(3)))


class _ArrivalProbe:
    """Wraps a cache and records the arrival times it is given."""

    def __init__(self, cache):
        self.cache = cache
        self.arrivals: list[int] = []

    def access(self, address, now, *, is_write=False):
        self.arrivals.append(now)
        return self.cache.access(address, now, is_write=is_write)

    def reset_stats(self):
        self.cache.reset_stats()

    def stats_snapshot(self):
        return self.cache.stats_snapshot()


def test_multiprog_arrivals_are_globally_ordered():
    setup = ExperimentSetup(num_cores=4, accesses_per_core=1500)
    probe = _ArrivalProbe(build_cache("alloy", setup.system, scale=setup.scale))
    runner = MultiProgramRunner(
        heterogeneous_mix(),
        lambda: probe,
        accesses_per_core=1500,
        seed=1,
        footprint_scale=1.0,
        warmup_fraction=0.0,
    )
    runner.run_multiprogrammed()
    assert probe.arrivals, "no accesses recorded"
    violations = sum(
        1 for a, b in zip(probe.arrivals, probe.arrivals[1:]) if b < a
    )
    # Arrival order is non-decreasing up to the stall adjustments applied
    # after issue; large backward jumps must never occur.
    max_backstep = max(
        (a - b for a, b in zip(probe.arrivals, probe.arrivals[1:]) if b < a),
        default=0,
    )
    assert max_backstep < 2_000, (violations, max_backstep)


def test_heterogeneous_mix_latencies_stay_sane():
    """With ordered delivery, a lightly loaded system must not produce
    thousand-cycle average latencies on a skewed mix."""
    setup = ExperimentSetup(num_cores=4, accesses_per_core=2500)
    cache = build_cache("alloy", setup.system, scale=setup.scale)
    runner = MultiProgramRunner(
        heterogeneous_mix(),
        lambda: cache,
        accesses_per_core=2500,
        seed=1,
        footprint_scale=1.0,
        warmup_fraction=0.5,
    )
    runner.run_multiprogrammed()
    assert cache.avg_read_latency < 600


def test_system_runner_ordered_too():
    setup = ExperimentSetup(num_cores=4, accesses_per_core=1500)
    config = setup.system
    probe = _ArrivalProbe(build_cache("alloy", config, scale=setup.scale))
    system = System(config, probe)
    system.run(
        heterogeneous_mix().scaled(1.0), accesses_per_core=1500
    )
    if probe.arrivals:
        max_backstep = max(
            (a - b for a, b in zip(probe.arrivals, probe.arrivals[1:]) if b < a),
            default=0,
        )
        assert max_backstep < 2_000
