#!/usr/bin/env python3
"""Head-to-head comparison of all five DRAM cache organizations.

Runs AlloyCache, Loh-Hill, ATCache, Footprint Cache and the Bi-Modal
cache on a set of mixes and prints the Figure 8(b)/8(c)-style summary:
hit rates, average LLSC miss penalties and off-chip traffic, plus the
Bi-Modal-specific way locator and adaptation statistics.

Usage:
    python examples/cache_comparison.py [mix ...]
"""

import sys

from repro.harness import ExperimentSetup, print_table, run_scheme_on_mix

SCHEMES = ("alloy", "lohhill", "atcache", "footprint", "fixed512", "bimodal")
DEFAULT_MIXES = ["Q2", "Q7", "Q17"]


def main() -> None:
    mixes = sys.argv[1:] or DEFAULT_MIXES
    setup = ExperimentSetup(num_cores=4, accesses_per_core=20_000, seed=1)

    summary = {s: {"hit": 0.0, "lat": 0.0, "mb": 0.0} for s in SCHEMES}
    for mix in mixes:
        rows = []
        for scheme in SCHEMES:
            stats = run_scheme_on_mix(scheme, mix, setup=setup).stats
            traffic_mb = (
                stats["offchip_fetched_bytes"] + stats["offchip_writeback_bytes"]
            ) / (1 << 20)
            rows.append(
                {
                    "scheme": scheme,
                    "hit_rate": stats["hit_rate"],
                    "avg_latency": stats["avg_read_latency"],
                    "hit_latency": stats["avg_hit_latency"],
                    "offchip_mb": traffic_mb,
                }
            )
            summary[scheme]["hit"] += stats["hit_rate"]
            summary[scheme]["lat"] += stats["avg_read_latency"]
            summary[scheme]["mb"] += traffic_mb
        print_table(rows, title=f"Mix {mix}")
        print()

    n = len(mixes)
    mean_rows = [
        {
            "scheme": s,
            "hit_rate": v["hit"] / n,
            "avg_latency": v["lat"] / n,
            "offchip_mb": v["mb"] / n,
        }
        for s, v in summary.items()
    ]
    print_table(mean_rows, title=f"Means over {n} mixes (Figure 8b/8c shape)")
    alloy = summary["alloy"]["lat"] / n
    bimodal = summary["bimodal"]["lat"] / n
    print(
        f"\nBi-Modal average latency change vs AlloyCache: "
        f"{100 * (bimodal - alloy) / alloy:+.1f}% (paper: -22.9%)"
    )


if __name__ == "__main__":
    main()
