"""simlint reporters: human text, machine JSON, and SARIF 2.1.0.

Text lines follow the compiler convention
``path:line:col: rule: message`` so editors and CI annotations pick
them up unmodified; the JSON document carries the same findings plus
the run summary for tooling; the SARIF document feeds GitHub code
scanning (``github/codeql-action/upload-sarif``) so findings annotate
pull requests inline.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.engine import LintResult
from repro.analysis.model import Violation

__all__ = ["render_json", "render_sarif", "render_text"]


def render_text(
    result: LintResult,
    *,
    new: Sequence[Violation],
    tolerated: Sequence[Violation] = (),
    stale_baseline_entries: int = 0,
) -> str:
    lines = [violation.render() for violation in new]
    for violation in tolerated:
        lines.append(f"{violation.render()} [baselined]")
    summary = (
        f"simlint: {result.files_scanned} file(s), "
        f"{len(result.rules_run)} rule(s): "
        f"{len(new)} finding(s)"
    )
    if tolerated:
        summary += f", {len(tolerated)} baselined"
    if result.suppressed:
        summary += f", {result.suppressed} suppressed inline"
    if stale_baseline_entries:
        summary += (
            f"; {stale_baseline_entries} stale baseline entr"
            f"{'y' if stale_baseline_entries == 1 else 'ies'} "
            "(fixed findings — prune with --update-baseline)"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    result: LintResult,
    *,
    new: Sequence[Violation],
    tolerated: Sequence[Violation] = (),
    stale_baseline_entries: int = 0,
) -> str:
    def row(violation: Violation, baselined: bool) -> dict:
        return {
            "rule": violation.rule,
            "path": violation.path,
            "line": violation.line,
            "col": violation.col,
            "message": violation.message,
            "snippet": violation.snippet,
            "baselined": baselined,
        }

    document = {
        "violations": [row(v, False) for v in new]
        + [row(v, True) for v in tolerated],
        "summary": {
            "files_scanned": result.files_scanned,
            "rules_run": list(result.rules_run),
            "new": len(new),
            "baselined": len(tolerated),
            "suppressed_inline": result.suppressed,
            "stale_baseline_entries": stale_baseline_entries,
        },
    }
    return json.dumps(document, indent=2)


_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(
    result: LintResult,
    *,
    new: Sequence[Violation],
    tolerated: Sequence[Violation] = (),
    stale_baseline_entries: int = 0,
) -> str:
    """One SARIF 2.1.0 run. Baselined findings carry a suppression.

    The rule catalog (descriptions + rationale from the registry) rides
    in ``tool.driver.rules``; each result references it by index and
    carries the simlint content fingerprint under
    ``partialFingerprints`` so code scanning tracks findings across
    line renumbering exactly like the committed baseline does.
    """
    from repro.analysis.rules import all_rules

    registered = all_rules()
    catalog: list[str] = sorted(
        set(result.rules_run) | {v.rule for v in (*new, *tolerated)}
    )
    index = {name: i for i, name in enumerate(catalog)}
    driver_rules = []
    for name in catalog:
        rule = registered.get(name)
        entry: dict = {
            "id": name,
            "shortDescription": {
                "text": rule.description if rule else name
            },
            "defaultConfiguration": {"level": "error"},
        }
        if rule is not None and rule.rationale:
            entry["fullDescription"] = {"text": rule.rationale}
        driver_rules.append(entry)

    def sarif_result(violation: Violation, baselined: bool) -> dict:
        entry = {
            "ruleId": violation.rule,
            "ruleIndex": index[violation.rule],
            "level": "note" if baselined else "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(violation.line, 1),
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "simlintFingerprint/v1": violation.fingerprint()
            },
        }
        if baselined:
            entry["suppressions"] = [
                {"kind": "external", "justification": "committed baseline"}
            ]
        return entry

    document = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "version": "2.0.0",
                        "rules": driver_rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": [sarif_result(v, False) for v in new]
                + [sarif_result(v, True) for v in tolerated],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
