"""Rule ``slots`` — record classes in hot modules declare ``__slots__``.

The drive loop materializes millions of per-record/per-block objects
(trace records, cache blocks, locator entries, bank access outcomes);
PR 1/PR 4 slotted them for footprint and attribute-lookup speed. A new
field added without slots silently reintroduces a per-instance
``__dict__`` — no test fails, throughput and memory just quietly
regress. Within the configured hot-path modules this rule requires:

* every ``@dataclass`` uses ``slots=True``;
* every plain class declares ``__slots__``;

except classes that are exempt by construction: ``Enum``/exception
types, and anything rooted in a dict-based ABC hierarchy (e.g. the
scheme organizations over ``DRAMCacheBase``, whose instances are
one-per-cell orchestrators, not per-record data).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.model import ProjectModel, SourceFile, Violation
from repro.analysis.rules import Rule, register_rule

_EXEMPT_BASES = {
    "ABC", "Protocol", "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
    "Exception", "BaseException", "ValueError", "RuntimeError", "TypeError",
    "KeyError", "OSError",
}


@register_rule
class SlotsRule(Rule):
    name = "slots"
    version = 1
    description = (
        "hot-path record classes must declare __slots__ "
        "(dataclasses: slots=True)"
    )
    rationale = (
        "The drive loop materializes millions of per-record objects "
        "(trace records, cache blocks, locator entries). A class "
        "without __slots__ carries a per-instance __dict__ — no test "
        "fails, footprint and attribute-lookup speed just quietly "
        "regress. Enum/exception/ABC-rooted classes are exempt by "
        "construction."
    )
    example_bad = """\
class TraceRecord:
    def __init__(self, address, is_write):
        self.address = address
        self.is_write = is_write
"""
    example_good = """\
class TraceRecord:
    __slots__ = ("address", "is_write")

    def __init__(self, address, is_write):
        self.address = address
        self.is_write = is_write
"""

    def check_file(
        self, source: SourceFile, project: ProjectModel
    ) -> Iterator[Violation]:
        if not any(source.matches(glob) for glob in project.config.slots_modules):
            return
        for info in project.classes:
            if info.source is not source:
                continue
            if set(info.bases) & _EXEMPT_BASES:
                continue
            if project.has_ancestor_base(info, _EXEMPT_BASES):
                continue
            if info.is_dataclass:
                if not info.dataclass_slots:
                    yield source.violation(
                        self.name, info.node,
                        f"dataclass {info.name} in a hot-path module must "
                        "declare @dataclass(slots=True)",
                    )
            elif not info.has_slots_attr:
                yield source.violation(
                    self.name, info.node,
                    f"class {info.name} in a hot-path module must declare "
                    "__slots__ (or be exempted with a justification)",
                )
